/**
 * @file
 * Tracked simulator-throughput benchmark (`run_all --throughput`).
 *
 * Runs a pinned microbench family — fetch-bound, issue-bound, and
 * commit-bound single-context kernels plus the mcf pointer chase in
 * full MTVP detailed mode — each at timeSkip=0 and timeSkip=1, and
 * measures host throughput in KIPS (thousands of useful committed
 * instructions per wall-clock second). Every run is serial and
 * in-process so the number measures the simulator, not the pool.
 *
 * The rows are appended to BENCH_history.jsonl as a `throughput`
 * entry (one figure digest per bench/timeSkip point, KIPS stored as
 * the headline value) and rendered as a before/after table against
 * the most recent prior throughput entry with the same seed. The
 * comparison is report-only by design: host throughput varies with
 * the machine, so CI gates stay on bit-identity and the scoreboard,
 * never on KIPS.
 */

#ifndef VPSIM_BENCH_THROUGHPUT_HH
#define VPSIM_BENCH_THROUGHPUT_HH

#include <cstdint>
#include <string>

namespace vpbench
{

/** Prefix of throughput figures inside history entries ("tp_..."). */
inline constexpr const char *throughputFigurePrefix = "tp_";

/** History label marking a throughput entry. */
inline constexpr const char *throughputLabel = "throughput";

/**
 * Run the family, print the KIPS table (markdown when @p markdown),
 * and append one entry to @p historyPath. @p unixTime stamps the
 * entry (host clock, passed in to keep this file wallclock-clean
 * apart from run timing). Returns 0 unless a run itself fails —
 * KIPS movement never fails the invocation.
 */
int runThroughput(const std::string &historyPath, uint64_t seed,
                  bool markdown, uint64_t unixTime);

} // namespace vpbench

#endif // VPSIM_BENCH_THROUGHPUT_HH
