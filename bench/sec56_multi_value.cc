/**
 * @file
 * Section 5.6 — Multiple-value multithreaded value prediction: spawn a
 * speculative thread per over-threshold candidate value (liberal
 * threshold) with the cache-level-oracle criticality filter the paper
 * used for this study. The paper's initial results: swim and parser
 * improve markedly over single-value MTVP.
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Section 5.6: multiple-value MTVP "
               "(liberal threshold, cache-oracle load selector)");

    SimConfig base = baseConfig();
    Runner runner;

    auto mk = [&](int maxValues, SelectorKind sel) {
        SimConfig c = base;
        c.vpMode = VpMode::Mtvp;
        c.numContexts = 8;
        c.predictor = PredictorKind::WangFranklin;
        c.selector = sel;
        c.spawnLatency = 8;
        c.storeBufferSize = 128;
        c.maxValuesPerSpawn = maxValues;
        c.multiValueThreshold = 4; // Liberal (Section 5.6).
        return c;
    };

    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"single-ilp", mk(1, SelectorKind::IlpPred)},
        {"single-or", mk(1, SelectorKind::CacheOracle)},
        {"multi4-or", mk(4, SelectorKind::CacheOracle)},
    };

    // The paper highlights swim and parser; we also print the sweep
    // subset for context.
    std::vector<std::string> wls = {"swim", "parser"};
    for (const auto &w : intSet(true)) {
        if (w != "parser")
            wls.push_back(w);
    }
    for (const auto &w : fpSet(true)) {
        if (w != "swim")
            wls.push_back(w);
    }
    speedupTable(runner, "all", wls, base, configs);

    // Spawn-volume details for the highlighted pair.
    for (const auto &wl : {std::string("swim"), std::string("parser")}) {
        SimResult r = runner.run(configs[2].second, wl);
        std::printf("%s: spawns=%.0f extraValueSpawns=%.0f promotes=%.0f "
                    "kills=%.0f\n",
                    wl.c_str(), r.stat("mtvp.spawns"),
                    r.stat("mtvp.extraValueSpawns"),
                    r.stat("mtvp.promotes"), r.stat("mtvp.kills"));
    }
    return 0;
}
