/**
 * @file
 * Figure 7 — Long-run speedups via checkpointed sampling: 10M-inst
 * mcf.long under fast-forward + SimPoint-style interval sampling
 * (20 intervals x 5000 measured insts, 2000-inst detail warmup,
 * 2M-inst fast-forward). All configurations share one fast-forward
 * checkpoint (the warmup key ignores vpMode/contexts), so the sweep
 * pays the functional warmup once. Alongside the usual speedup rows we
 * print each configuration's sampled CPI with its 95% confidence
 * interval — the error bars this engine exists to report.
 *
 * Extra knobs: MTVP_LONG_INSTS (total insts, default 10000000),
 * MTVP_LONG_FF (fast-forward insts, default 2000000),
 * MTVP_LONG_INTERVALS (measured intervals, default 20).
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);

    // Re-export the long-run instruction count as MTVP_INSTS so the
    // title line, the JSON fragment, and — critically — the bench
    // history's comparability key all report the real run length
    // instead of the short-sweep default.
    const uint64_t longInsts = envU64("MTVP_LONG_INSTS", 10'000'000);
    std::string instStr = std::to_string(longInsts);
    setenv("MTVP_INSTS", instStr.c_str(), 1);

    printTitle("Figure 7: sampled long-run speedups (mcf.long)");

    SimConfig base = baseConfig();
    base.maxInsts = longInsts;
    base.ffInsts = envU64("MTVP_LONG_FF", 2'000'000);
    base.sampleIntervals =
        static_cast<int>(envU64("MTVP_LONG_INTERVALS", 20));
    base.sampleIntervalInsts = 5000;
    base.sampleWarmupInsts = 2000;

    Runner runner;
    // Park fast-forward checkpoints next to the cached results so every
    // configuration in the sweep restores the same functional warmup.
    if (runner.cache().enabled())
        base.checkpointDir = runner.cache().dir();

    auto cfgFor = [&](VpMode mode, int ctxs) {
        SimConfig c = base;
        c.vpMode = mode;
        c.numContexts = ctxs;
        return c;
    };
    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"stvp", cfgFor(VpMode::Stvp, 1)},
        {"mtvp2", cfgFor(VpMode::Mtvp, 2)},
        {"mtvp4", cfgFor(VpMode::Mtvp, 4)},
        {"mtvp8", cfgFor(VpMode::Mtvp, 8)},
    };

    std::vector<std::string> workloads = {"mcf.long"};
    speedupTable(runner, "longrun", workloads, base, configs);

    // Sampled-CPI detail rows: mean +/- CI95 per configuration. These
    // re-submit the same points, so they resolve from the in-process
    // dedup map (or the on-disk cache) without extra simulation.
    std::printf("%-10s %12s %12s %12s\n", "config", "sampleCpi",
                "ci95", "intervals");
    for (const auto &wl : workloads) {
        auto detail = [&](const std::string &name, const SimConfig &cfg) {
            SimResult r = runner.run(cfg, wl);
            std::printf("%-10s %12.4f %12.4f %12.0f\n", name.c_str(),
                        r.stat("sample.mean.cpi"),
                        r.stat("sample.ci95.cpi"),
                        r.stat("sim.sampledIntervals"));
        };
        detail("base", base);
        for (const auto &[name, cfg] : configs)
            detail(name, cfg);
    }
    return 0;
}
