/**
 * @file
 * Figure 6 — MTVP versus (a) an idealized checkpoint/wide-window machine
 * (8K-entry ROB and queues, effectively unlimited rename registers, no
 * value prediction) and (b) "spawn only": the same thread-spawning
 * hardware without value prediction, isolating the split-window effect
 * from the value-speculation effect (Section 5.7). The paper reports
 * category averages: the wide window wins on SPECfp, MTVP wins on
 * SPECint, and spawn-only alone is weak.
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Figure 6: idealized wide window vs best MTVP vs "
               "spawn-only");

    SimConfig base = baseConfig();
    Runner runner;

    SimConfig wide = base;
    wide.wideWindow = true;

    SimConfig mtvp = base;
    mtvp.vpMode = VpMode::Mtvp;
    mtvp.numContexts = 8;
    mtvp.predictor = PredictorKind::WangFranklin;
    mtvp.selector = SelectorKind::IlpPred;
    mtvp.spawnLatency = 8;
    mtvp.storeBufferSize = 128;

    SimConfig spawnOnly = base;
    spawnOnly.vpMode = VpMode::SpawnOnly;
    spawnOnly.numContexts = 8;
    spawnOnly.selector = SelectorKind::IlpPred;
    spawnOnly.spawnLatency = 8;
    spawnOnly.storeBufferSize = 128;

    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"wide-window", wide},
        {"best-mtvp", mtvp},
        {"spawn-only", spawnOnly},
    };

    speedupTable(runner, "int", intSet(true), base, configs);
    speedupTable(runner, "fp", fpSet(true), base, configs);
    return 0;
}
