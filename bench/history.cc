#include "history.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/stats.hh"

namespace vpbench
{

using vpsim::json::Value;

std::string
historyEntryJson(const HistoryEntry &e)
{
    std::ostringstream os;
    os << "{\"schemaVersion\": ";
    vpsim::jsonQuote(os, e.schemaVersion);
    os << ", \"unixTime\": " << e.unixTime << ", \"label\": ";
    vpsim::jsonQuote(os, e.label);
    os << ", \"insts\": " << e.insts << ", \"seed\": " << e.seed
       << ", \"fullSet\": " << (e.fullSet ? "true" : "false")
       << ", \"totalWallSeconds\": ";
    vpsim::jsonNumber(os, vpsim::roundSig(e.totalWallSeconds, 6));
    os << ", \"figures\": {";
    bool first = true;
    for (const auto &[name, fig] : e.figures) {
        if (!first)
            os << ", ";
        first = false;
        vpsim::jsonQuote(os, name);
        os << ": {\"wallSeconds\": ";
        vpsim::jsonNumber(os, vpsim::roundSig(fig.wallSeconds, 6));
        os << ", \"exitStatus\": " << fig.exitStatus;
        if (fig.hasHeadline) {
            os << ", \"headlineConfig\": ";
            vpsim::jsonQuote(os, fig.headlineConfig);
            os << ", \"headlineSpeedupPct\": ";
            vpsim::jsonNumber(os, fig.headlineSpeedupPct);
        }
        os << "}";
    }
    os << "}}";
    return os.str();
}

namespace
{

bool
parseFigures(const Value &figs, HistoryEntry &out, std::string *error)
{
    if (!figs.isObject()) {
        if (error != nullptr)
            *error = "\"figures\" is not an object";
        return false;
    }
    for (const auto &[name, v] : figs.obj) {
        FigureDigest d;
        d.wallSeconds = v.numberOr("wallSeconds", 0.0);
        d.exitStatus = static_cast<int>(v.numberOr("exitStatus", 0.0));
        const Value *h = v.get("headlineSpeedupPct");
        if (h != nullptr && h->isNumber()) {
            d.hasHeadline = true;
            d.headlineSpeedupPct = h->number;
            d.headlineConfig = v.stringOr("headlineConfig", "");
        }
        out.figures.emplace(name, std::move(d));
    }
    return true;
}

} // namespace

bool
parseHistoryEntry(const Value &v, HistoryEntry &out, std::string *error)
{
    if (!v.isObject()) {
        if (error != nullptr)
            *error = "entry is not an object";
        return false;
    }
    out = HistoryEntry{};
    out.schemaVersion = v.stringOr("schemaVersion", "");
    if (out.schemaVersion != historySchemaVersion) {
        if (error != nullptr)
            *error = "unknown schemaVersion '" + out.schemaVersion + "'";
        return false;
    }
    out.unixTime = static_cast<uint64_t>(v.numberOr("unixTime", 0.0));
    out.label = v.stringOr("label", "");
    out.insts = static_cast<uint64_t>(v.numberOr("insts", 0.0));
    out.seed = static_cast<uint64_t>(v.numberOr("seed", 0.0));
    const Value *fs = v.get("fullSet");
    out.fullSet = fs != nullptr && fs->kind == Value::Kind::Bool &&
                  fs->boolean;
    out.totalWallSeconds = v.numberOr("totalWallSeconds", 0.0);
    const Value *figs = v.get("figures");
    if (figs == nullptr) {
        if (error != nullptr)
            *error = "entry has no \"figures\"";
        return false;
    }
    return parseFigures(*figs, out, error);
}

std::vector<HistoryEntry>
loadHistory(const std::string &path, std::vector<std::string> *warnings)
{
    std::vector<HistoryEntry> out;
    std::ifstream is(path);
    if (!is)
        return out; // Missing history: empty trajectory.
    std::string line;
    size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        bool blank = true;
        for (char c : line)
            blank = blank && (c == ' ' || c == '\t' || c == '\r');
        if (blank)
            continue;
        Value v;
        std::string err;
        HistoryEntry e;
        if (!vpsim::json::parse(line, v, &err) ||
            !parseHistoryEntry(v, e, &err)) {
            if (warnings != nullptr) {
                char buf[256];
                std::snprintf(buf, sizeof(buf), "%s:%zu: skipped (%s)",
                              path.c_str(), lineNo, err.c_str());
                warnings->push_back(buf);
            }
            continue;
        }
        out.push_back(std::move(e));
    }
    return out;
}

bool
appendHistory(const std::string &path, const HistoryEntry &e)
{
    std::ofstream os(path, std::ios::app);
    if (!os)
        return false;
    os << historyEntryJson(e) << "\n";
    return static_cast<bool>(os);
}

bool
entryFromSummary(const Value &summary, HistoryEntry &out,
                 std::string *error)
{
    if (!summary.isObject()) {
        if (error != nullptr)
            *error = "summary is not an object";
        return false;
    }
    out = HistoryEntry{};
    out.label = "seeded-from-summary";
    out.insts = static_cast<uint64_t>(summary.numberOr("insts", 0.0));
    out.seed = static_cast<uint64_t>(summary.numberOr("seed", 0.0));
    const Value *fs = summary.get("fullSet");
    out.fullSet = fs != nullptr && fs->kind == Value::Kind::Bool &&
                  fs->boolean;
    const Value *figs = summary.get("figures");
    if (figs == nullptr) {
        if (error != nullptr)
            *error = "summary has no \"figures\"";
        return false;
    }
    if (!parseFigures(*figs, out, error))
        return false;
    for (const auto &[name, fig] : out.figures) {
        (void)name;
        out.totalWallSeconds += fig.wallSeconds;
    }
    return true;
}

std::vector<Drift>
computeDrift(const std::vector<HistoryEntry> &prior,
             const HistoryEntry &cur, double warnThresholdPct)
{
    std::vector<Drift> out;
    for (const auto &[name, fig] : cur.figures) {
        if (!fig.hasHeadline)
            continue;
        const FigureDigest *base = nullptr;
        for (auto it = prior.rbegin(); it != prior.rend(); ++it) {
            if (it->insts != cur.insts || it->seed != cur.seed ||
                it->fullSet != cur.fullSet) {
                continue;
            }
            auto fit = it->figures.find(name);
            if (fit != it->figures.end() && fit->second.hasHeadline) {
                base = &fit->second;
                break;
            }
        }
        if (base == nullptr)
            continue; // New figure (or new settings): nothing to drift.
        Drift d;
        d.figure = name;
        d.prevPct = base->headlineSpeedupPct;
        d.newPct = fig.headlineSpeedupPct;
        // Relative drift with a 1-percentage-point floor: a headline
        // moving 0.02pp around zero is noise, not a regression.
        d.driftPct = 100.0 * std::fabs(d.newPct - d.prevPct) /
                     std::max(1.0, std::fabs(d.prevPct));
        d.exceeds = d.driftPct > warnThresholdPct;
        out.push_back(std::move(d));
    }
    return out;
}

std::string
historyMarkdown(const std::vector<HistoryEntry> &prior,
                const HistoryEntry &cur, const std::vector<Drift> &drifts,
                size_t tailRows)
{
    std::ostringstream os;
    os << "### Bench history (headline speedup %, oldest -> newest)\n\n";
    os << "| figure | trajectory | latest | drift | verdict |\n";
    os << "|---|---|---|---|---|\n";
    char buf[64];
    for (const auto &[name, fig] : cur.figures) {
        if (!fig.hasHeadline)
            continue;
        std::vector<double> tail;
        for (const HistoryEntry &e : prior) {
            if (e.insts != cur.insts || e.seed != cur.seed ||
                e.fullSet != cur.fullSet) {
                continue;
            }
            auto it = e.figures.find(name);
            if (it != e.figures.end() && it->second.hasHeadline)
                tail.push_back(it->second.headlineSpeedupPct);
        }
        if (tail.size() > tailRows)
            tail.erase(tail.begin(),
                       tail.end() - static_cast<long>(tailRows));
        os << "| " << name << " | ";
        for (size_t i = 0; i < tail.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%s%.2f",
                          i == 0 ? "" : " -> ", tail[i]);
            os << buf;
        }
        if (tail.empty())
            os << "(new)";
        std::snprintf(buf, sizeof(buf), " | %.2f | ",
                      fig.headlineSpeedupPct);
        os << buf;
        const Drift *d = nullptr;
        for (const Drift &x : drifts)
            if (x.figure == name)
                d = &x;
        if (d == nullptr) {
            os << "- | new |\n";
        } else {
            std::snprintf(buf, sizeof(buf), "%.2f%% | %s |\n",
                          d->driftPct, d->exceeds ? "DRIFT" : "ok");
            os << buf;
        }
    }
    return os.str();
}

} // namespace vpbench
