#include "scoreboard.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "sim/stats.hh"

namespace vpbench
{

using vpsim::json::Value;

const char *
pointStatusName(PointStatus s)
{
    switch (s) {
      case PointStatus::Pass: return "pass";
      case PointStatus::Warn: return "warn";
      case PointStatus::Fail: return "FAIL";
      case PointStatus::Missing: return "MISSING";
    }
    return "?";
}

int
FigureScore::count(PointStatus s) const
{
    int n = 0;
    for (const PointResult &r : results)
        n += r.status == s ? 1 : 0;
    return n;
}

PointStatus
FigureScore::worst() const
{
    PointStatus w = PointStatus::Pass;
    for (const PointResult &r : results) {
        if (r.status == PointStatus::Fail ||
            r.status == PointStatus::Missing) {
            return PointStatus::Fail;
        }
        if (r.status == PointStatus::Warn)
            w = PointStatus::Warn;
    }
    return w;
}

PointStatus
evaluatePoint(const ExpectedPoint &p, double measured)
{
    if (!std::isfinite(measured))
        return PointStatus::Fail;
    double delta = std::fabs(measured - p.expected);
    if (delta <= p.warnTol)
        return PointStatus::Pass;
    if (delta <= p.failTol)
        return PointStatus::Warn;
    return PointStatus::Fail;
}

double
defaultWarnTol(double expected)
{
    return std::max(0.5, 0.02 * std::fabs(expected));
}

double
defaultFailTol(double expected)
{
    return std::max(2.0, 0.10 * std::fabs(expected));
}

bool
loadExpectedFigure(const std::string &path, ExpectedFigure &out,
                   std::string *error)
{
    Value root;
    std::string err;
    if (!vpsim::json::parseFile(path, root, &err)) {
        if (error != nullptr)
            *error = path + ": " + err;
        return false;
    }
    std::string version = root.stringOr("schemaVersion", "");
    if (version != scoreboardSchemaVersion) {
        if (error != nullptr) {
            *error = path + ": schemaVersion '" + version +
                     "' (this binary expects '" +
                     scoreboardSchemaVersion + "')";
        }
        return false;
    }
    out = ExpectedFigure{};
    out.figure = root.stringOr("figure", "");
    out.insts = static_cast<uint64_t>(root.numberOr("insts", 0));
    out.seed = static_cast<uint64_t>(root.numberOr("seed", 0));
    const Value *fs = root.get("fullSet");
    out.fullSet = fs != nullptr && fs->kind == Value::Kind::Bool &&
                  fs->boolean;
    const Value *points = root.get("points");
    if (points == nullptr || !points->isArray()) {
        if (error != nullptr)
            *error = path + ": missing 'points' array";
        return false;
    }
    for (const Value &v : points->arr) {
        ExpectedPoint p;
        p.category = v.stringOr("category", "");
        p.workload = v.stringOr("workload", "");
        p.config = v.stringOr("config", "");
        p.metric = v.stringOr("metric", "speedupPct");
        const Value *exp = v.get("expected");
        if (exp == nullptr || !exp->isNumber()) {
            if (error != nullptr) {
                *error = path + ": point " + p.workload + "/" +
                         p.config + " has no numeric 'expected'";
            }
            return false;
        }
        p.expected = exp->number;
        p.warnTol = v.numberOr("warnTol", defaultWarnTol(p.expected));
        p.failTol = v.numberOr("failTol", defaultFailTol(p.expected));
        out.points.push_back(std::move(p));
    }
    return true;
}

namespace
{

/**
 * Find the @p occurrence'th row matching a point; nullptr when absent.
 * Figures that sweep a parameter across several tables reuse the same
 * (category, workload, config) key once per table, so points and rows
 * are paired positionally among duplicates — both sides preserve the
 * figure's row order.
 */
const Value *
findRow(const Value &report, const ExpectedPoint &p, int occurrence)
{
    const Value *rows = report.get("rows");
    if (rows == nullptr || !rows->isArray())
        return nullptr;
    int seen = 0;
    for (const Value &row : rows->arr) {
        if (row.stringOr("workload", "") == p.workload &&
            row.stringOr("config", "") == p.config &&
            row.stringOr("category", "") == p.category) {
            if (seen == occurrence)
                return &row;
            ++seen;
        }
    }
    return nullptr;
}

std::string
pointKey(const ExpectedPoint &p)
{
    return p.category + '\0' + p.workload + '\0' + p.config + '\0' +
           p.metric;
}

} // namespace

FigureScore
scoreFigure(const ExpectedFigure &expected, const Value &report,
            uint64_t insts, uint64_t seed, bool fullSet)
{
    FigureScore score;
    score.figure = expected.figure;
    if (expected.insts != insts || expected.seed != seed ||
        expected.fullSet != fullSet) {
        std::ostringstream os;
        os << "baseline recorded at insts=" << expected.insts << " seed="
           << expected.seed << (expected.fullSet ? " (full set)" : "")
           << " but this run used insts=" << insts << " seed=" << seed
           << (fullSet ? " (full set)" : "")
           << "; comparisons are not meaningful across settings";
        score.settingsNote = os.str();
    }
    std::map<std::string, int> occurrence;
    for (const ExpectedPoint &p : expected.points) {
        PointResult r;
        r.point = p;
        const Value *row = findRow(report, p, occurrence[pointKey(p)]++);
        const Value *metric = row != nullptr ? row->get(p.metric)
                                             : nullptr;
        if (metric == nullptr || !metric->isNumber()) {
            r.status = PointStatus::Missing;
        } else {
            r.measured = metric->number;
            r.status = evaluatePoint(p, r.measured);
        }
        score.results.push_back(std::move(r));
    }
    return score;
}

ExpectedFigure
baselineFromReport(const std::string &figure, const Value &report,
                   uint64_t insts, uint64_t seed, bool fullSet)
{
    ExpectedFigure fig;
    fig.figure = figure;
    fig.insts = insts;
    fig.seed = seed;
    fig.fullSet = fullSet;
    const Value *rows = report.get("rows");
    if (rows == nullptr || !rows->isArray())
        return fig;
    for (const Value &row : rows->arr) {
        const Value *metric = row.get("speedupPct");
        if (metric == nullptr || !metric->isNumber())
            continue;
        ExpectedPoint p;
        p.category = row.stringOr("category", "");
        p.workload = row.stringOr("workload", "");
        p.config = row.stringOr("config", "");
        p.metric = "speedupPct";
        p.expected = metric->number;
        p.warnTol = defaultWarnTol(p.expected);
        p.failTol = defaultFailTol(p.expected);
        fig.points.push_back(std::move(p));
    }
    return fig;
}

std::string
expectedFigureJson(const ExpectedFigure &fig)
{
    std::ostringstream os;
    auto q = [&os](const std::string &s) { vpsim::jsonQuote(os, s); };
    os << "{\n  \"schemaVersion\": ";
    q(scoreboardSchemaVersion);
    os << ",\n  \"figure\": ";
    q(fig.figure);
    os << ",\n  \"insts\": " << fig.insts << ",\n  \"seed\": "
       << fig.seed << ",\n  \"fullSet\": "
       << (fig.fullSet ? "true" : "false") << ",\n  \"points\": [";
    for (size_t i = 0; i < fig.points.size(); ++i) {
        const ExpectedPoint &p = fig.points[i];
        os << (i == 0 ? "" : ",") << "\n    {\"category\": ";
        q(p.category);
        os << ", \"workload\": ";
        q(p.workload);
        os << ", \"config\": ";
        q(p.config);
        os << ", \"metric\": ";
        q(p.metric);
        os << ", \"expected\": ";
        vpsim::jsonNumber(os, p.expected);
        os << ", \"warnTol\": ";
        vpsim::jsonNumber(os, p.warnTol);
        os << ", \"failTol\": ";
        vpsim::jsonNumber(os, p.failTol);
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

void
printScoreReport(std::ostream &os,
                 const std::vector<FigureScore> &scores, bool markdown)
{
    char line[256];
    if (markdown) {
        os << "| figure | points | pass | warn | fail | missing | "
              "status |\n";
        os << "|---|---:|---:|---:|---:|---:|---|\n";
    } else {
        os << "paper-fidelity scoreboard\n";
        std::snprintf(line, sizeof(line),
                      "%-26s %7s %6s %6s %6s %8s  %s\n", "figure",
                      "points", "pass", "warn", "fail", "missing",
                      "status");
        os << line;
    }
    for (const FigureScore &s : scores) {
        int pass = s.count(PointStatus::Pass);
        int warnN = s.count(PointStatus::Warn);
        int fail = s.count(PointStatus::Fail);
        int missing = s.count(PointStatus::Missing);
        if (markdown) {
            std::snprintf(line, sizeof(line),
                          "| %s | %zu | %d | %d | %d | %d | %s |\n",
                          s.figure.c_str(), s.results.size(), pass,
                          warnN, fail, missing,
                          pointStatusName(s.worst()));
        } else {
            std::snprintf(line, sizeof(line),
                          "%-26s %7zu %6d %6d %6d %8d  %s\n",
                          s.figure.c_str(), s.results.size(), pass,
                          warnN, fail, missing,
                          pointStatusName(s.worst()));
        }
        os << line;
    }
    // Itemize everything that is not a clean pass.
    for (const FigureScore &s : scores) {
        if (!s.settingsNote.empty())
            os << (markdown ? "\n> " : "note: ") << s.figure << ": "
               << s.settingsNote << "\n";
        for (const PointResult &r : s.results) {
            if (r.status == PointStatus::Pass)
                continue;
            const ExpectedPoint &p = r.point;
            if (r.status == PointStatus::Missing) {
                std::snprintf(line, sizeof(line),
                              "%s%s: %s/%s/%s %s: no measured row\n",
                              markdown ? "- " : "  ", s.figure.c_str(),
                              p.category.c_str(), p.workload.c_str(),
                              p.config.c_str(), p.metric.c_str());
            } else {
                std::snprintf(
                    line, sizeof(line),
                    "%s%s: %s/%s/%s %s: measured %.3f, expected "
                    "%.3f +/- %.3f (fail at %.3f) [%s]\n",
                    markdown ? "- " : "  ", s.figure.c_str(),
                    p.category.c_str(), p.workload.c_str(),
                    p.config.c_str(), p.metric.c_str(), r.measured,
                    p.expected, p.warnTol, p.failTol,
                    pointStatusName(r.status));
            }
            os << line;
        }
    }
}

} // namespace vpbench
