#include "throughput.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "history.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "workloads/workload.hh"

namespace vpbench
{

namespace
{

uint64_t
tpEnvU64(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0)
                                      : def;
}

// ------------------------------------------------------------------
// Pinned microbench family. Each kernel saturates one core stage so a
// regression in that stage's host cost shows up in exactly one row.
// The loops are nominally unbounded (huge trip counts); maxInsts is
// the real stop condition, so every run commits exactly the same
// instruction stream regardless of the iteration budget.
// ------------------------------------------------------------------

// Fetch-bound: a dense run of taken branches. Every instruction block
// redirects fetch, so the front end (BTB, redirect, fetch queue) is
// the bottleneck and the back end mostly idles.
const char *fetchBoundSrc = R"(
        li   r1, 1000000000
    loop:
        beq  r0, r0, a1
    a1:
        beq  r0, r0, a2
    a2:
        beq  r0, r0, a3
    a3:
        beq  r0, r0, a4
    a4:
        subi r1, r1, 1
        bne  r1, r0, loop
        halt
)";

// Issue-bound: one long serial dependency chain. Only one instruction
// is ever ready per cycle, so the run exercises the issue queue's
// wakeup/select path far more than fetch or commit.
const char *issueBoundSrc = R"(
        li   r1, 1
        li   r2, 1000000000
    loop:
        addi r1, r1, 1
        slli r3, r1, 1
        and  r3, r3, r1
        addi r3, r3, 3
        add  r1, r1, r3
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
)";

// Commit-bound: independent single-cycle ALU ops with no carried
// dependencies. Everything is ready the moment it dispatches, so
// retirement bandwidth (ROB/commit) limits progress.
const char *commitBoundSrc = R"(
        li   r2, 1000000000
    loop:
        addi r3, r0, 1
        addi r4, r0, 2
        addi r5, r0, 3
        addi r6, r0, 4
        addi r7, r0, 5
        addi r3, r0, 6
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
)";

/** One point of the family: a workload plus the core config knobs
 *  that aren't swept (timeSkip is). */
struct TpPoint
{
    std::string key;            ///< figure-key stem, e.g. "fetch"
    const vpsim::Workload *wl;  ///< what to run
    vpsim::VpMode vpMode;
    int numContexts;
};

struct TpRow
{
    std::string figure; ///< "tp_<key>_ts<k>"
    uint64_t insts = 0;
    double wallSeconds = 0.0;
    double kips = 0.0;
};

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
runThroughput(const std::string &historyPath, uint64_t seed,
              bool markdown, uint64_t unixTime)
{
    const uint64_t insts = tpEnvU64("MTVP_TP_INSTS", 30000);
    const int reps =
        static_cast<int>(tpEnvU64("MTVP_TP_REPS", 2));

    // Local, unregistered workloads: the family is pinned here rather
    // than in the registry so registry growth can't silently change
    // what this benchmark measures.
    vpsim::AsmWorkload fetchWl(
        "tp-fetch", vpsim::BenchCategory::Int,
        "throughput probe: taken-branch dense (fetch-bound)",
        fetchBoundSrc, [](vpsim::MainMemory &, uint64_t) {});
    vpsim::AsmWorkload issueWl(
        "tp-issue", vpsim::BenchCategory::Int,
        "throughput probe: serial dependency chain (issue-bound)",
        issueBoundSrc, [](vpsim::MainMemory &, uint64_t) {});
    vpsim::AsmWorkload commitWl(
        "tp-commit", vpsim::BenchCategory::Int,
        "throughput probe: independent ALU stream (commit-bound)",
        commitBoundSrc, [](vpsim::MainMemory &, uint64_t) {});
    const vpsim::Workload *mcf = vpsim::findWorkload("mcf");
    if (mcf == nullptr) {
        std::fprintf(stderr, "throughput: workload 'mcf' missing\n");
        return 1;
    }

    const std::vector<TpPoint> points = {
        {"fetch", &fetchWl, vpsim::VpMode::None, 1},
        {"issue", &issueWl, vpsim::VpMode::None, 1},
        {"commit", &commitWl, vpsim::VpMode::None, 1},
        // The real-workload anchor: mcf in full MTVP detailed mode,
        // the configuration the paper's figures lean on hardest.
        {"mcf", mcf, vpsim::VpMode::Mtvp, 8},
    };

    std::vector<TpRow> rows;
    double totalWall = 0.0;
    for (const TpPoint &p : points) {
        for (uint64_t ts : {uint64_t{0}, uint64_t{1}}) {
            vpsim::SimConfig cfg;
            cfg.vpMode = p.vpMode;
            cfg.numContexts = p.numContexts;
            cfg.maxInsts = insts;
            cfg.seed = seed;
            cfg.timeSkip = ts;
            // ffInsts stays 0: a warmup checkpoint would hide the
            // simulator cost this benchmark exists to measure.

            TpRow row;
            row.figure = vpsim::csprintf(
                "%s%s_ts%llu", throughputFigurePrefix, p.key.c_str(),
                static_cast<unsigned long long>(ts));
            row.wallSeconds = -1.0;
            for (int r = 0; r < std::max(reps, 1); ++r) {
                double t0 = monotonicSeconds();
                vpsim::SimResult res = vpsim::runWorkload(cfg, *p.wl);
                double wall = monotonicSeconds() - t0;
                totalWall += wall;
                if (row.wallSeconds < 0.0 || wall < row.wallSeconds) {
                    row.wallSeconds = wall;
                    row.insts = res.usefulInsts;
                }
            }
            row.kips = row.wallSeconds > 0.0
                           ? static_cast<double>(row.insts) /
                                 row.wallSeconds / 1000.0
                           : 0.0;
            std::fprintf(stderr, "  %-16s %8.0f KIPS  (%llu insts, "
                         "%.3f s best of %d)\n",
                         row.figure.c_str(), row.kips,
                         static_cast<unsigned long long>(row.insts),
                         row.wallSeconds, std::max(reps, 1));
            rows.push_back(std::move(row));
        }
    }

    // ----- History: one entry, one figure digest per point ----------
    HistoryEntry cur;
    cur.unixTime = unixTime;
    cur.label = throughputLabel;
    cur.insts = insts;
    cur.seed = seed;
    cur.fullSet = false;
    cur.totalWallSeconds = totalWall;
    for (const TpRow &r : rows) {
        FigureDigest d;
        d.wallSeconds = r.wallSeconds;
        d.exitStatus = 0;
        d.hasHeadline = true;
        d.headlineConfig = "kips";
        d.headlineSpeedupPct = r.kips;
        cur.figures[r.figure] = d;
    }

    // Baseline = the most recent prior throughput entry with the same
    // measurement settings (insts + seed); host-speed comparisons
    // across different settings would be meaningless.
    std::vector<std::string> warnings;
    std::vector<HistoryEntry> prior = loadHistory(historyPath,
                                                  &warnings);
    for (const std::string &w : warnings)
        std::fprintf(stderr, "history: %s\n", w.c_str());
    const HistoryEntry *base = nullptr;
    for (const HistoryEntry &e : prior) {
        if (e.label == throughputLabel && e.insts == cur.insts &&
            e.seed == cur.seed) {
            base = &e; // Oldest-first load order: last match wins.
        }
    }

    // ----- Before/after table ---------------------------------------
    if (markdown) {
        std::printf("\n## Simulator throughput (host KIPS)\n\n");
        std::printf("| bench | before | after | ratio |\n");
        std::printf("|---|---:|---:|---:|\n");
    } else {
        std::printf("\nSimulator throughput (host KIPS, %llu insts, "
                    "best of %d):\n",
                    static_cast<unsigned long long>(insts),
                    std::max(reps, 1));
        std::printf("  %-16s %10s %10s %8s\n", "bench", "before",
                    "after", "ratio");
    }
    for (const TpRow &r : rows) {
        double before = 0.0;
        if (base != nullptr) {
            auto it = base->figures.find(r.figure);
            if (it != base->figures.end() && it->second.hasHeadline)
                before = it->second.headlineSpeedupPct;
        }
        std::string beforeStr = before > 0.0
                                    ? vpsim::csprintf("%.0f", before)
                                    : std::string("-");
        std::string ratioStr =
            before > 0.0 ? vpsim::csprintf("%.2fx", r.kips / before)
                         : std::string("-");
        if (markdown) {
            std::printf("| %s | %s | %.0f | %s |\n", r.figure.c_str(),
                        beforeStr.c_str(), r.kips, ratioStr.c_str());
        } else {
            std::printf("  %-16s %10s %10.0f %8s\n", r.figure.c_str(),
                        beforeStr.c_str(), r.kips, ratioStr.c_str());
        }
    }
    if (base == nullptr) {
        std::printf("%sno comparable prior throughput entry in %s; "
                    "table is after-only\n",
                    markdown ? "\n" : "  ", historyPath.c_str());
    }

    if (!appendHistory(historyPath, cur)) {
        std::fprintf(stderr, "cannot write '%s'\n",
                     historyPath.c_str());
        return 1;
    }
    std::fprintf(stderr, "appended throughput entry (%zu figures) to "
                 "%s\n", cur.figures.size(), historyPath.c_str());
    // Report-only by design: KIPS depends on the host, so movement is
    // informational. Only a failed run itself returns non-zero.
    return 0;
}

} // namespace vpbench
