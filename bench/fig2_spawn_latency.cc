/**
 * @file
 * Figure 2 — Sensitivity to the thread-spawn (rename-map flash-copy)
 * latency: average speedups at 1-, 8- and 16-cycle spawn penalties for
 * STVP and MTVP x {2,4,8} with the oracle predictor (Section 5.2).
 * The paper reports category averages; we print those (per-workload
 * rows available via MTVP_SET=full).
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Figure 2: spawn-latency sensitivity (oracle, ILP-pred)");

    SimConfig base = baseConfig();
    Runner runner;

    auto cfgFor = [&](VpMode mode, int ctxs, int latency) {
        SimConfig c = base;
        c.vpMode = mode;
        c.numContexts = ctxs;
        c.predictor = PredictorKind::Oracle;
        c.selector = SelectorKind::IlpPred;
        c.spawnLatency = latency;
        c.storeBufferSize = 0;
        return c;
    };

    for (int latency : {1, 8, 16}) {
        std::printf("-- spawn latency %d cycles --\n", latency);
        std::vector<std::pair<std::string, SimConfig>> configs = {
            {"stvp", cfgFor(VpMode::Stvp, 1, latency)},
            {"mtvp2", cfgFor(VpMode::Mtvp, 2, latency)},
            {"mtvp4", cfgFor(VpMode::Mtvp, 4, latency)},
            {"mtvp8", cfgFor(VpMode::Mtvp, 8, latency)},
        };
        speedupTable(runner, "int", intSet(true), base, configs);
        speedupTable(runner, "fp", fpSet(true), base, configs);
    }
    return 0;
}
