/**
 * @file
 * Figure 4 — Fetch-policy comparison (Section 5.5): single fetch path
 * (the parent stops fetching after spawning; the paper's default) versus
 * the no-stall policy where the parent keeps fetching its own copy of
 * the post-load path under ICOUNT arbitration. The paper found no-stall
 * "highly counterproductive".
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Figure 4: fetch policy after an MTVP spawn "
               "(Wang-Franklin, mtvp8)");

    SimConfig base = baseConfig();
    Runner runner;

    auto wf = [&](VpMode mode, FetchPolicy policy) {
        SimConfig c = base;
        c.vpMode = mode;
        c.numContexts = mode == VpMode::Stvp ? 1 : 8;
        c.predictor = PredictorKind::WangFranklin;
        c.selector = SelectorKind::IlpPred;
        c.fetchPolicy = policy;
        c.spawnLatency = 8;
        c.storeBufferSize = 128;
        return c;
    };

    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"stvp", wf(VpMode::Stvp, FetchPolicy::SingleFetchPath)},
        {"mtvp-sfp", wf(VpMode::Mtvp, FetchPolicy::SingleFetchPath)},
        {"mtvp-nostall", wf(VpMode::Mtvp, FetchPolicy::NoStall)},
    };

    speedupTable(runner, "int", intSet(false), base, configs);
    speedupTable(runner, "fp", fpSet(false), base, configs);
    return 0;
}
