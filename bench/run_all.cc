/**
 * @file
 * Runs figure/table bench binaries and aggregates their results into
 * one machine-readable `BENCH_results.json`:
 *
 *   { "figures": { "<binary>": { "wallSeconds": ..., "exitStatus": ...,
 *                                "report": { title, insts, rows } } } }
 *
 * Each row is (category, workload, config, speedupPct, ipc, baseIpc,
 * cycles) — the per-figure fragments the bench harness emits via the
 * MTVP_JSON hook. Wall-clock per figure is recorded so successive runs
 * of this binary seed the repo's performance trajectory; a second
 * invocation is answered from the persistent result cache and should
 * finish in a small fraction of the cold-run time.
 *
 * It also maintains two paper-fidelity artifacts:
 *
 *  - `BENCH_summary.json` (always written): schema-versioned headline
 *    per figure — the best per-config geomean speedup plus wall-clock —
 *    small enough to commit and diff across PRs.
 *  - `--scoreboard`: compare every figure's fresh rows against the
 *    committed expectations in bench/expected/<figure>.json
 *    (bench/scoreboard.hh) and exit nonzero when any point drifts
 *    outside its fail tolerance. `--write-expected` re-baselines the
 *    expectation files after a deliberate model change.
 *
 * And one trajectory artifact (bench/history.hh):
 *
 *  - `--append-history`: append this run's headline digest as one
 *    JSON line to `BENCH_history.jsonl` and compare each figure's
 *    headline speedup against the most recent comparable entry,
 *    exiting nonzero when any drifts beyond the warn threshold
 *    (MTVP_DRIFT_PCT, default 5%). `--seed-history` converts the
 *    committed BENCH_summary.json into a seed entry without running
 *    anything.
 *
 * Usage: run_all [--jobs N] [--no-cache] [--only fig,fig,...]
 *                [--scoreboard] [--write-expected] [--markdown]
 *                [--append-history] [--seed-history] [--long]
 *                [--ledger[=PATH]] [--ledger-report[=PATH]]
 *                [--progress] [--metrics-port N] [--metrics-dump[=PATH]]
 *
 * `--long` adds the sampled long-run figures (fig7_sampled_longrun:
 * 10M-inst mcf.long via fast-forward checkpointing + interval
 * sampling) to the run. They are off by default so the standard
 * 12000-inst scoreboard sweep stays fast. History drift for a figure
 * only gates against prior entries that carry a headline for that
 * same figure, so short-run trajectories are unaffected by --long
 * runs and vice versa.
 *
 * Engine telemetry (src/sim/run_ledger.hh, src/sim/metrics.hh):
 *
 *  - `--ledger[=PATH]` (default BENCH_ledger.jsonl) starts a fresh
 *    JSONL job journal and spawns every figure with MTVP_LEDGER /
 *    MTVP_LEDGER_FIGURE so their SimJobGraphs append submit/cache-hit/
 *    start/finish (and watchdog `stuck`) events to the shared file.
 *  - `--ledger-report[=PATH]` replays an existing ledger into the
 *    final job-state table and prints a post-mortem summary — no
 *    figures are run.
 *  - `--progress` tails the ledger while figures run and renders a
 *    live one-line status (jobs done/running/cached, aggregate
 *    insts/s, EWMA ETA) plus a per-figure breakdown at the end.
 *    Implies --ledger.
 *  - `--metrics-port N` (or MTVP_METRICS_PORT) serves the process
 *    metrics registry at 127.0.0.1:N/metrics (Prometheus text) and the
 *    replayed job table at /jobs (JSON) for the lifetime of the sweep.
 *    Port 0 picks an ephemeral port (printed to stderr). Implies
 *    --ledger.
 *  - `--metrics-dump[=PATH]` (default BENCH_metrics.prom) writes the
 *    final Prometheus exposition when the sweep finishes.
 *
 * All of it is host-side observability: the figures' numbers are
 * bit-identical with every telemetry flag on or off (CI-gated).
 *
 * (--jobs/--no-cache are forwarded to the figure binaries; all MTVP_*
 * environment knobs apply too. MTVP_EXPECTED overrides the expected-
 * values directory, MTVP_SUMMARY the summary path, MTVP_HISTORY the
 * history path.)
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "history.hh"
#include "throughput.hh"
#include "scoreboard.hh"
#include "sim/json.hh"
#include "sim/metrics.hh"
#include "sim/metrics_http.hh"
#include "sim/run_ledger.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace
{

uint64_t
envU64(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 0) : def;
}

std::string
envStr(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    return v != nullptr ? v : def;
}

/** Split a comma-separated list. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Headline of one figure: the best per-config geomean speedup. */
struct Headline
{
    bool valid = false;
    std::string config;
    double speedupPct = 0.0;
};

Headline
headlineOf(const vpsim::json::Value &report)
{
    Headline h;
    const vpsim::json::Value *rows = report.get("rows");
    if (rows == nullptr || !rows->isArray())
        return h;
    std::vector<std::string> configs;
    for (const vpsim::json::Value &row : rows->arr) {
        std::string cfg = row.stringOr("config", "");
        bool seen = false;
        for (const std::string &c : configs)
            seen = seen || c == cfg;
        if (!seen)
            configs.push_back(cfg);
    }
    for (const std::string &cfg : configs) {
        std::vector<double> speedups;
        for (const vpsim::json::Value &row : rows->arr) {
            if (row.stringOr("config", "") != cfg)
                continue;
            const vpsim::json::Value *s = row.get("speedupPct");
            if (s != nullptr && s->isNumber())
                speedups.push_back(s->number);
        }
        if (speedups.empty())
            continue;
        double g = vpsim::geomeanSpeedup(speedups);
        if (!h.valid || g > h.speedupPct) {
            h.valid = true;
            h.config = cfg;
            h.speedupPct = g;
        }
    }
    return h;
}

double
nowUnixMs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/**
 * Live view over the shared run ledger while figure subprocesses append
 * to it. Each tick re-reads the whole file and folds it into a fresh
 * ProgressModel — ledgers are a few hundred lines, so a full replay per
 * tick is far simpler than incremental tailing and inherits the
 * reader's torn-final-line tolerance for free.
 */
class LedgerTail
{
  public:
    void
    start(const std::string &path, bool renderProgress)
    {
        _path = path;
        _render = renderProgress;
        _stop.store(false, std::memory_order_relaxed);
        _thread = std::thread([this] { loop(); });
    }

    void
    stop()
    {
        if (!_thread.joinable())
            return;
        _stop.store(true, std::memory_order_relaxed);
        _thread.join();
        tick(); // Final fold so end-of-run metrics include every event.
        if (_render) {
            std::fprintf(stderr, "\n%s", renderFigures().c_str());
        }
    }

    std::string
    renderFigures()
    {
        std::lock_guard<std::mutex> lk(_m);
        return _model.renderFigures();
    }

  private:
    void
    loop()
    {
        while (!_stop.load(std::memory_order_relaxed)) {
            tick();
            std::this_thread::sleep_for(std::chrono::milliseconds(500));
        }
    }

    void
    tick()
    {
        std::vector<vpsim::LedgerEvent> events;
        if (!vpsim::loadLedger(_path, events))
            return; // Not created yet: nothing to show.
        vpsim::ProgressModel model;
        for (const vpsim::LedgerEvent &e : events)
            model.apply(e);
        model.exportMetrics();
        std::string line = model.renderLine(nowUnixMs());
        {
            std::lock_guard<std::mutex> lk(_m);
            _model = std::move(model);
        }
        if (_render) {
            // \r + erase-to-EOL keeps the live line in place between
            // the figures' own stderr output.
            std::fprintf(stderr, "\r\033[K%s", line.c_str());
            std::fflush(stderr);
        }
    }

    std::string _path;
    bool _render = false;
    std::atomic<bool> _stop{false};
    std::thread _thread;
    std::mutex _m;
    vpsim::ProgressModel _model;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string forward;
    std::vector<std::string> only;
    bool scoreboard = false;
    bool writeExpected = false;
    bool markdown = false;
    bool appendHist = false;
    bool seedHist = false;
    bool longRuns = false;
    bool throughput = false;
    bool ledger = false;
    std::string ledgerPath = "BENCH_ledger.jsonl";
    bool ledgerReport = false;
    std::string ledgerReportPath;
    bool progress = false;
    int metricsPort = -1; // -1 = no endpoint.
    bool metricsDump = false;
    std::string metricsDumpPath = "BENCH_metrics.prom";
    if (const char *v = std::getenv("MTVP_METRICS_PORT");
        v != nullptr && *v != '\0') {
        metricsPort = std::atoi(v);
    }
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--no-cache] [--only fig,...]\n"
                "          [--scoreboard] [--write-expected] "
                "[--markdown]\n"
                "          [--append-history] [--seed-history] "
                "[--long] [--throughput]\n"
                "          [--ledger[=PATH]] [--ledger-report[=PATH]]\n"
                "          [--progress] [--metrics-port N] "
                "[--metrics-dump[=PATH]]\n"
                "Runs every figure binary (or the --only subset), "
                "writes BENCH_results.json\nand BENCH_summary.json, "
                "and optionally checks the measured rows against\nthe "
                "committed expectations in bench/expected/ "
                "(--scoreboard) or rewrites\nthem (--write-expected).\n"
                "--append-history appends the headline digest to "
                "BENCH_history.jsonl and\nfails on >MTVP_DRIFT_PCT "
                "headline drift; --seed-history converts the\n"
                "committed BENCH_summary.json into a history entry "
                "without running anything.\n"
                "--long also runs the sampled long-run figures "
                "(fig7_sampled_longrun).\n"
                "--ledger journals every job to a JSONL run ledger "
                "(default\nBENCH_ledger.jsonl); --ledger-report "
                "replays one into a post-mortem\nsummary without "
                "running anything; --progress renders a live status "
                "line;\n--metrics-port serves /metrics and /jobs on "
                "127.0.0.1 during the sweep;\n--metrics-dump writes "
                "the final Prometheus exposition (default\n"
                "BENCH_metrics.prom).\n"
                "--throughput runs the pinned simulator-throughput "
                "microbench family\n(fetch/issue/commit-bound plus mcf "
                "detailed, timeSkip 0 and 1) in-process,\nappends "
                "host-KIPS rows to BENCH_history.jsonl, and prints a "
                "before/after\ntable vs the last comparable entry "
                "(report-only; never a gate).\n",
                argv[0]);
            return 0;
        } else if (a == "--throughput") {
            throughput = true;
        } else if (a == "--long") {
            longRuns = true;
        } else if (a == "--append-history") {
            appendHist = true;
        } else if (a == "--seed-history") {
            seedHist = true;
        } else if (a == "--only" && i + 1 < argc) {
            auto more = splitList(argv[++i]);
            only.insert(only.end(), more.begin(), more.end());
        } else if (a.rfind("--only=", 0) == 0) {
            auto more = splitList(a.substr(7));
            only.insert(only.end(), more.begin(), more.end());
        } else if (a == "--scoreboard") {
            scoreboard = true;
        } else if (a == "--write-expected") {
            writeExpected = true;
        } else if (a == "--markdown") {
            markdown = true;
        } else if (a == "--ledger") {
            ledger = true;
        } else if (a.rfind("--ledger=", 0) == 0) {
            ledger = true;
            ledgerPath = a.substr(9);
        } else if (a == "--ledger-report") {
            ledgerReport = true;
        } else if (a.rfind("--ledger-report=", 0) == 0) {
            ledgerReport = true;
            ledgerReportPath = a.substr(16);
        } else if (a == "--progress") {
            progress = true;
        } else if (a == "--metrics-port" && i + 1 < argc) {
            metricsPort = std::atoi(argv[++i]);
        } else if (a.rfind("--metrics-port=", 0) == 0) {
            metricsPort = std::atoi(a.c_str() + 15);
        } else if (a == "--metrics-dump") {
            metricsDump = true;
        } else if (a.rfind("--metrics-dump=", 0) == 0) {
            metricsDump = true;
            metricsDumpPath = a.substr(15);
        } else {
            forward += " '" + a + "'";
        }
    }
    // The live views are ledger-derived, so they imply journaling.
    if (progress || metricsPort >= 0)
        ledger = true;

    // ----- Post-mortem ledger replay (no figure runs) ----------------
    if (ledgerReport) {
        const std::string path =
            ledgerReportPath.empty() ? ledgerPath : ledgerReportPath;
        std::vector<vpsim::LedgerEvent> events;
        std::vector<std::string> warnings;
        if (!vpsim::loadLedger(path, events, &warnings)) {
            std::fprintf(stderr, "cannot read ledger '%s'\n",
                         path.c_str());
            return 1;
        }
        for (const std::string &w : warnings)
            std::fprintf(stderr, "ledger: %s\n", w.c_str());
        vpsim::writeLedgerReport(std::cout,
                                 vpsim::replayLedger(events));
        return 0;
    }

    // Figure binaries live next to this one (build/bench/).
    std::string self = argv[0];
    size_t slash = self.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : self.substr(0, slash);

    const std::vector<std::string> allFigures = {
        "table1_config",
        "fig1_oracle_potential",
        "fig2_spawn_latency",
        "sec4_prefetch_ablation",
        "sec53_store_buffer",
        "fig3_realistic_wf",
        "sec54_dfcm_ablation",
        "fig4_fetch_policy",
        "fig5_multivalue_potential",
        "sec56_multi_value",
        "fig6_checkpoint_compare",
    };
    // Sampled long-run figures: opt-in via --long (or --only) so the
    // default sweep stays short.
    const std::vector<std::string> longFigures = {
        "fig7_sampled_longrun",
    };
    std::vector<std::string> known = allFigures;
    known.insert(known.end(), longFigures.begin(), longFigures.end());
    std::vector<std::string> figures;
    if (only.empty()) {
        figures = allFigures;
        if (longRuns)
            figures.insert(figures.end(), longFigures.begin(),
                           longFigures.end());
    } else {
        for (const std::string &name : only) {
            bool found = false;
            for (const std::string &f : known)
                found = found || f == name;
            if (!found) {
                std::fprintf(stderr, "unknown figure '%s'\n",
                             name.c_str());
                return 1;
            }
            figures.push_back(name);
        }
    }
    // table1_config prints a static parameter table: it takes no bench
    // flags and produces no rows, so it runs bare.
    const std::vector<std::string> noHarness = {"table1_config"};

    const uint64_t insts = envU64("MTVP_INSTS", 12000);
    const uint64_t seed = envU64("MTVP_SEED", 1);
    const bool fullSet = envStr("MTVP_SET", "") == "full";
    const std::string expectedDir = envStr("MTVP_EXPECTED",
                                           "bench/expected");
    const std::string historyPath = envStr("MTVP_HISTORY",
                                           "BENCH_history.jsonl");
    double driftThreshold = vpbench::historyDriftWarnPct;
    if (const char *v = std::getenv("MTVP_DRIFT_PCT");
        v != nullptr && *v != '\0') {
        driftThreshold = std::strtod(v, nullptr);
    }

    // ----- Simulator-throughput benchmark (no figure subprocesses) ---
    if (throughput) {
        return vpbench::runThroughput(
            historyPath, seed, markdown,
            static_cast<uint64_t>(nowUnixMs() / 1000.0));
    }

    // ----- Seed the history from the committed summary (no runs) -----
    if (seedHist) {
        std::string sumPath = envStr("MTVP_SUMMARY",
                                     "BENCH_summary.json");
        vpsim::json::Value v;
        std::string err;
        vpbench::HistoryEntry e;
        if (!vpsim::json::parseFile(sumPath, v, &err) ||
            !vpbench::entryFromSummary(v, e, &err)) {
            std::fprintf(stderr, "cannot seed history from '%s': %s\n",
                         sumPath.c_str(), err.c_str());
            return 1;
        }
        if (!vpbench::appendHistory(historyPath, e)) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         historyPath.c_str());
            return 1;
        }
        std::fprintf(stderr, "seeded %s from %s (%zu figures)\n",
                     historyPath.c_str(), sumPath.c_str(),
                     e.figures.size());
        return 0;
    }

    // ----- Engine telemetry: ledger, live progress, /metrics ---------
    LedgerTail tail;
    vpsim::MetricsHttpServer server;
    if (ledger) {
        std::remove(ledgerPath.c_str()); // One ledger per sweep.
        vpsim::RunLedger::global().open(ledgerPath);
        vpsim::LedgerEvent e;
        e.kind = vpsim::LedgerEventKind::RunStart;
        vpsim::RunLedger::global().record(std::move(e));
        tail.start(ledgerPath, progress);
    }
    if (metricsPort >= 0) {
        const std::string jobsPath = ledgerPath;
        bool up = server.start(
            metricsPort,
            [jobsPath] {
                // Fold the ledger into the registry first: the tail
                // only refreshes every 500ms, and a scrape can land
                // before its first tick.
                std::vector<vpsim::LedgerEvent> events;
                if (vpsim::loadLedger(jobsPath, events)) {
                    vpsim::ProgressModel model;
                    for (const vpsim::LedgerEvent &e : events)
                        model.apply(e);
                    model.exportMetrics();
                }
                return vpsim::MetricsRegistry::instance()
                    .prometheusText();
            },
            [jobsPath] {
                std::vector<vpsim::LedgerEvent> events;
                vpsim::loadLedger(jobsPath, events);
                return vpsim::ledgerJobsJson(
                    vpsim::replayLedger(events));
            });
        if (up) {
            std::fprintf(stderr,
                         "metrics endpoint: http://127.0.0.1:%d"
                         "/metrics and /jobs\n",
                         server.port());
        }
    }

    std::ostringstream out;
    out << "{\n  \"figures\": {";

    struct FigRun
    {
        std::string name;
        double wallSeconds = 0.0;
        int exitStatus = 0;
        bool hasReport = false;
        vpsim::json::Value report;
    };
    std::vector<FigRun> runs;

    bool firstFig = true;
    double totalSeconds = 0.0;
    int failures = 0;
    for (const std::string &fig : figures) {
        bool bare = false;
        for (const std::string &n : noHarness)
            bare = bare || n == fig;

        std::string fragment = dir + "/" + fig + ".rows.json";
        std::remove(fragment.c_str());

        std::string cmd;
        if (!bare)
            cmd += "MTVP_JSON='" + fragment + "' ";
        if (ledger && !bare) {
            // Figures journal into the shared ledger; per-event figure
            // labels make the live progress view per-figure.
            cmd += "MTVP_LEDGER='" + ledgerPath + "' ";
            cmd += "MTVP_LEDGER_FIGURE='" + fig + "' ";
        }
        cmd += "'" + dir + "/" + fig + "'";
        if (!bare)
            cmd += forward;

        std::fprintf(stderr, "== %s ==\n", fig.c_str());
        auto t0 = std::chrono::steady_clock::now();
        int status = std::system(cmd.c_str());
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        totalSeconds += secs;
        if (status != 0)
            ++failures;

        FigRun run;
        run.name = fig;
        run.wallSeconds = secs;
        run.exitStatus = status;

        out << (firstFig ? "\n" : ",\n");
        firstFig = false;
        out << "    \"" << fig << "\": {\"wallSeconds\": ";
        vpsim::jsonNumber(out, vpsim::roundSig(secs, 6));
        out << ", \"exitStatus\": " << status << ", \"report\": ";

        std::ifstream frag(fragment);
        std::string text;
        if (frag) {
            std::ostringstream buf;
            buf << frag.rdbuf();
            text = buf.str();
            while (!text.empty() &&
                   (text.back() == '\n' || text.back() == '\r')) {
                text.pop_back();
            }
            std::remove(fragment.c_str());
        }
        if (text.empty()) {
            out << "null";
        } else {
            // The fragment is itself a JSON object; splice it in
            // verbatim and keep a parsed copy for the summary and the
            // scoreboard.
            out << text;
            std::string err;
            if (vpsim::json::parse(text, run.report, &err)) {
                run.hasReport = true;
            } else {
                std::fprintf(stderr, "bad row fragment from %s: %s\n",
                             fig.c_str(), err.c_str());
                ++failures;
            }
        }
        out << "}";
        runs.push_back(std::move(run));
    }

    if (ledger)
        tail.stop(); // Final fold + per-figure breakdown (--progress).
    server.stop();
    if (metricsDump) {
        std::ofstream ms(metricsDumpPath);
        if (!ms) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         metricsDumpPath.c_str());
            return 1;
        }
        vpsim::MetricsRegistry::instance().writePrometheus(ms);
        std::fprintf(stderr, "wrote %s\n", metricsDumpPath.c_str());
    }

    out << "\n  },\n  \"totalWallSeconds\": ";
    vpsim::jsonNumber(out, vpsim::roundSig(totalSeconds, 6));
    out << ",\n  \"failures\": " << failures << "\n}\n";

    std::string path = envStr("MTVP_RESULTS", "BENCH_results.json");
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return 1;
    }
    os << out.str();
    std::fprintf(stderr,
                 "wrote %s (%zu figures, %.1fs total, %d failures)\n",
                 path.c_str(), figures.size(), totalSeconds, failures);

    // ----- BENCH_summary.json: committed headline-per-figure digest --
    {
        std::ostringstream sum;
        sum << "{\n  \"schemaVersion\": \"mtvp-bench-summary-v1\",\n"
            << "  \"insts\": " << insts << ",\n  \"seed\": " << seed
            << ",\n  \"fullSet\": " << (fullSet ? "true" : "false")
            << ",\n  \"figures\": {";
        bool first = true;
        for (const FigRun &run : runs) {
            sum << (first ? "\n" : ",\n");
            first = false;
            sum << "    ";
            vpsim::jsonQuote(sum, run.name);
            sum << ": {\"wallSeconds\": ";
            vpsim::jsonNumber(sum, vpsim::roundSig(run.wallSeconds, 6));
            sum << ", \"exitStatus\": " << run.exitStatus;
            Headline h = run.hasReport ? headlineOf(run.report)
                                       : Headline{};
            if (h.valid) {
                sum << ", \"headlineConfig\": ";
                vpsim::jsonQuote(sum, h.config);
                sum << ", \"headlineSpeedupPct\": ";
                vpsim::jsonNumber(sum, h.speedupPct);
            }
            sum << "}";
        }
        sum << "\n  }\n}\n";
        std::string sumPath = envStr("MTVP_SUMMARY",
                                     "BENCH_summary.json");
        std::ofstream ss(sumPath);
        if (!ss) {
            std::fprintf(stderr, "cannot write '%s'\n", sumPath.c_str());
            return 1;
        }
        ss << sum.str();
        std::fprintf(stderr, "wrote %s\n", sumPath.c_str());
    }

    // ----- Expected-value baselines (--write-expected) ---------------
    if (writeExpected) {
        for (const FigRun &run : runs) {
            if (!run.hasReport)
                continue;
            vpbench::ExpectedFigure fig = vpbench::baselineFromReport(
                run.name, run.report, insts, seed, fullSet);
            if (fig.points.empty())
                continue;
            std::string p = expectedDir + "/" + run.name + ".json";
            std::ofstream es(p);
            if (!es) {
                std::fprintf(stderr, "cannot write '%s'\n", p.c_str());
                return 1;
            }
            es << vpbench::expectedFigureJson(fig);
            std::fprintf(stderr, "wrote %s (%zu points)\n", p.c_str(),
                         fig.points.size());
        }
    }

    // ----- Scoreboard (--scoreboard) ---------------------------------
    bool drift = false;
    if (scoreboard) {
        std::vector<vpbench::FigureScore> scores;
        for (const FigRun &run : runs) {
            if (!run.hasReport)
                continue;
            std::string p = expectedDir + "/" + run.name + ".json";
            vpbench::ExpectedFigure fig;
            std::string err;
            if (!vpbench::loadExpectedFigure(p, fig, &err)) {
                std::fprintf(stderr,
                             "scoreboard: skipping %s (%s)\n",
                             run.name.c_str(), err.c_str());
                continue;
            }
            scores.push_back(vpbench::scoreFigure(fig, run.report,
                                                  insts, seed,
                                                  fullSet));
        }
        if (scores.empty()) {
            std::fprintf(stderr,
                         "scoreboard: no expected-value files found "
                         "under '%s'\n",
                         expectedDir.c_str());
            return 1;
        }
        vpbench::printScoreReport(std::cout, scores, markdown);
        for (const vpbench::FigureScore &s : scores)
            drift = drift || s.worst() == vpbench::PointStatus::Fail;
        if (drift) {
            std::fprintf(stderr,
                         "scoreboard: drift outside fail tolerance — "
                         "investigate, or re-baseline deliberately "
                         "with --write-expected\n");
        }
    }

    // ----- Bench history (--append-history) --------------------------
    bool histDrift = false;
    if (appendHist) {
        vpbench::HistoryEntry e;
        e.unixTime = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        e.label = envStr("MTVP_HISTORY_LABEL", "run_all");
        e.insts = insts;
        e.seed = seed;
        e.fullSet = fullSet;
        e.totalWallSeconds = totalSeconds;
        for (const FigRun &run : runs) {
            vpbench::FigureDigest d;
            d.wallSeconds = run.wallSeconds;
            d.exitStatus = run.exitStatus;
            Headline h = run.hasReport ? headlineOf(run.report)
                                       : Headline{};
            if (h.valid) {
                d.hasHeadline = true;
                d.headlineConfig = h.config;
                d.headlineSpeedupPct = h.speedupPct;
            }
            e.figures.emplace(run.name, std::move(d));
        }

        std::vector<std::string> warnings;
        std::vector<vpbench::HistoryEntry> prior =
            vpbench::loadHistory(historyPath, &warnings);
        for (const std::string &w : warnings)
            std::fprintf(stderr, "history: %s\n", w.c_str());
        std::vector<vpbench::Drift> drifts =
            vpbench::computeDrift(prior, e, driftThreshold);
        if (!vpbench::appendHistory(historyPath, e)) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         historyPath.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "appended history entry to %s (%zu prior)\n",
                     historyPath.c_str(), prior.size());
        if (markdown)
            std::cout << vpbench::historyMarkdown(prior, e, drifts, 8);
        for (const vpbench::Drift &d : drifts) {
            if (!d.exceeds)
                continue;
            histDrift = true;
            std::fprintf(stderr,
                         "history: %s headline %.2f%% -> %.2f%% "
                         "(drift %.2f%% > %.2f%%)\n",
                         d.figure.c_str(), d.prevPct, d.newPct,
                         d.driftPct, driftThreshold);
        }
    }

    return failures == 0 && !drift && !histDrift ? 0 : 1;
}
