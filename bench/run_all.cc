/**
 * @file
 * Runs every figure/table bench binary and aggregates their results
 * into one machine-readable `BENCH_results.json`:
 *
 *   { "figures": { "<binary>": { "wallSeconds": ..., "exitStatus": ...,
 *                                "report": { title, insts, rows } } } }
 *
 * Each row is (category, workload, config, speedupPct, ipc, baseIpc,
 * cycles) — the per-figure fragments the bench harness emits via the
 * MTVP_JSON hook. Wall-clock per figure is recorded so successive runs
 * of this binary seed the repo's performance trajectory; a second
 * invocation is answered from the persistent result cache and should
 * finish in a small fraction of the cold-run time.
 *
 * Usage: run_all [--jobs N] [--no-cache]  (flags are forwarded to the
 * figure binaries; all MTVP_* environment knobs apply too).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    std::string forward;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::printf("usage: %s [--jobs N] [--no-cache]\n"
                        "Runs every figure binary and writes "
                        "BENCH_results.json.\n",
                        argv[0]);
            return 0;
        }
        forward += " '" + a + "'";
    }

    // Figure binaries live next to this one (build/bench/).
    std::string self = argv[0];
    size_t slash = self.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : self.substr(0, slash);

    const std::vector<std::string> figures = {
        "table1_config",
        "fig1_oracle_potential",
        "fig2_spawn_latency",
        "sec4_prefetch_ablation",
        "sec53_store_buffer",
        "fig3_realistic_wf",
        "sec54_dfcm_ablation",
        "fig4_fetch_policy",
        "fig5_multivalue_potential",
        "sec56_multi_value",
        "fig6_checkpoint_compare",
    };
    // table1_config prints a static parameter table: it takes no bench
    // flags and produces no rows, so it runs bare.
    const std::vector<std::string> noHarness = {"table1_config"};

    std::ostringstream out;
    out << "{\n  \"figures\": {";

    bool firstFig = true;
    double totalSeconds = 0.0;
    int failures = 0;
    for (const std::string &fig : figures) {
        bool bare = false;
        for (const std::string &n : noHarness)
            bare = bare || n == fig;

        std::string fragment = dir + "/" + fig + ".rows.json";
        std::remove(fragment.c_str());

        std::string cmd;
        if (!bare)
            cmd += "MTVP_JSON='" + fragment + "' ";
        cmd += "'" + dir + "/" + fig + "'";
        if (!bare)
            cmd += forward;

        std::fprintf(stderr, "== %s ==\n", fig.c_str());
        auto t0 = std::chrono::steady_clock::now();
        int status = std::system(cmd.c_str());
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        totalSeconds += secs;
        if (status != 0)
            ++failures;

        out << (firstFig ? "\n" : ",\n");
        firstFig = false;
        out << "    \"" << fig << "\": {\"wallSeconds\": " << secs
            << ", \"exitStatus\": " << status << ", \"report\": ";

        std::ifstream frag(fragment);
        if (frag) {
            // The fragment is itself a JSON object; splice it in
            // verbatim (strip the trailing newline for tidy nesting).
            std::ostringstream buf;
            buf << frag.rdbuf();
            std::string text = buf.str();
            while (!text.empty() &&
                   (text.back() == '\n' || text.back() == '\r')) {
                text.pop_back();
            }
            out << (text.empty() ? "null" : text);
            std::remove(fragment.c_str());
        } else {
            out << "null";
        }
        out << "}";
    }

    out << "\n  },\n  \"totalWallSeconds\": " << totalSeconds
        << ",\n  \"failures\": " << failures << "\n}\n";

    const char *outPath = std::getenv("MTVP_RESULTS");
    std::string path = outPath != nullptr ? outPath
                                          : "BENCH_results.json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return 1;
    }
    os << out.str();
    std::fprintf(stderr,
                 "wrote %s (%zu figures, %.1fs total, %d failures)\n",
                 path.c_str(), figures.size(), totalSeconds, failures);
    return failures == 0 ? 0 : 1;
}
