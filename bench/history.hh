/**
 * @file
 * Bench-history regression tracker. `BENCH_summary.json` is a single
 * committed snapshot; this module gives it a trajectory: every
 * `run_all --append-history` invocation appends one JSON line per run
 * to `BENCH_history.jsonl` (headline speedup, wall-clock, and exit
 * status per figure, plus the measurement settings), and each append
 * is checked against the most recent *comparable* entry — same insts,
 * seed, and workload set — for headline-speedup drift. Drift beyond
 * the warn threshold (default 5%, measured in relative percent with a
 * 1-percentage-point floor so tiny headlines don't divide to noise)
 * makes the append report failure, which is what the CI release job
 * gates on.
 *
 * The JSONL format is append-only and line-oriented on purpose: git
 * diffs show exactly one added line per run, and a corrupt line
 * degrades to a warning instead of poisoning the whole file.
 *
 * This file stays host-clock-free (vplint wallclock rule): callers
 * pass timestamps in (run_all is on the allowlist).
 */

#ifndef VPSIM_BENCH_HISTORY_HH
#define VPSIM_BENCH_HISTORY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace vpbench
{

inline constexpr const char *historySchemaVersion =
    "mtvp-bench-history-v1";

/** Default relative drift threshold, percent. */
inline constexpr double historyDriftWarnPct = 5.0;

/** One figure's digest inside a history entry. */
struct FigureDigest
{
    double wallSeconds = 0.0;
    int exitStatus = 0;
    bool hasHeadline = false;
    std::string headlineConfig;
    double headlineSpeedupPct = 0.0;
};

/** One appended run (one line of BENCH_history.jsonl). */
struct HistoryEntry
{
    std::string schemaVersion = historySchemaVersion;
    uint64_t unixTime = 0;   ///< seconds since epoch; 0 = unknown/seeded
    std::string label;       ///< free-form origin tag ("ci", "seeded"...)
    uint64_t insts = 0;      ///< MTVP_INSTS the run used
    uint64_t seed = 0;       ///< MTVP_SEED
    bool fullSet = false;    ///< MTVP_SET=full
    double totalWallSeconds = 0.0;
    std::map<std::string, FigureDigest> figures;
};

/** Serialize @p e as a single JSON line (no trailing newline). */
std::string historyEntryJson(const HistoryEntry &e);

/** Parse one history line; false (with @p error) on malformed input. */
bool parseHistoryEntry(const vpsim::json::Value &v, HistoryEntry &out,
                       std::string *error = nullptr);

/** Load every parseable entry of the JSONL file at @p path, oldest
 *  first. A missing file is an empty history (not an error); corrupt
 *  lines are skipped with a note in @p warnings when non-null. */
std::vector<HistoryEntry> loadHistory(const std::string &path,
                                      std::vector<std::string> *warnings
                                      = nullptr);

/** Append @p e as one line to @p path; false on I/O failure. */
bool appendHistory(const std::string &path, const HistoryEntry &e);

/** Convert a committed BENCH_summary.json document into a seed entry
 *  (label "seeded-from-summary", unixTime 0). */
bool entryFromSummary(const vpsim::json::Value &summary,
                      HistoryEntry &out, std::string *error = nullptr);

/** One figure's headline movement vs the comparison baseline. */
struct Drift
{
    std::string figure;
    double prevPct = 0.0;  ///< baseline headline speedup (percent)
    double newPct = 0.0;   ///< this run's headline speedup (percent)
    double driftPct = 0.0; ///< |new-prev| / max(1, |prev|) * 100
    bool exceeds = false;  ///< driftPct > threshold
};

/**
 * Compare @p cur against the most recent entry in @p prior with the
 * same (insts, seed, fullSet) that carries a headline for the same
 * figure. Figures with no comparable baseline are skipped — a new
 * figure is not drift.
 */
std::vector<Drift> computeDrift(const std::vector<HistoryEntry> &prior,
                                const HistoryEntry &cur,
                                double warnThresholdPct);

/** Markdown trajectory table: per figure, the headline across the
 *  last @p tailRows comparable entries plus @p cur, with the drift
 *  verdict column. */
std::string historyMarkdown(const std::vector<HistoryEntry> &prior,
                            const HistoryEntry &cur,
                            const std::vector<Drift> &drifts,
                            size_t tailRows);

} // namespace vpbench

#endif // VPSIM_BENCH_HISTORY_HH
