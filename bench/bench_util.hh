/**
 * @file
 * Shared harness for the per-figure/table bench binaries. Every bench
 * prints the same rows/series the paper reports (percent speedup in
 * useful IPC over the no-VP Table-1 baseline), with geometric means per
 * SPEC category as in the paper's figures.
 *
 * Environment knobs:
 *   MTVP_INSTS=<n>   useful instructions per run   (default 12000)
 *   MTVP_SET=full    run every workload            (default: benches
 *                    that sweep many configurations use a fixed
 *                    representative subset; single-sweep benches always
 *                    run the full set)
 *   MTVP_SEED=<n>    workload data-set seed        (default 1)
 */

#ifndef VPSIM_BENCH_BENCH_UTIL_HH
#define VPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "workloads/workload.hh"

namespace vpbench
{

using namespace vpsim;

inline uint64_t
envU64(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 0) : def;
}

inline uint64_t
instCount()
{
    return envU64("MTVP_INSTS", 12000);
}

inline bool
fullSet()
{
    const char *v = std::getenv("MTVP_SET");
    return v != nullptr && std::strcmp(v, "full") == 0;
}

/** All registered workload names of one category. */
inline std::vector<std::string>
categoryNames(BenchCategory cat)
{
    std::vector<std::string> names;
    for (const Workload *w : workloadsByCategory(cat))
        names.push_back(w->name());
    return names;
}

/** Representative subset used by multi-configuration sweeps. */
inline std::vector<std::string>
quickInt()
{
    return {"gzip.g", "vpr.r", "mcf", "crafty", "parser", "vortex",
            "twolf"};
}

inline std::vector<std::string>
quickFp()
{
    return {"wupwise", "swim", "art.1", "equake", "mgrid", "ammp"};
}

inline std::vector<std::string>
intSet(bool sweepBench)
{
    if (!sweepBench || fullSet())
        return categoryNames(BenchCategory::Int);
    return quickInt();
}

inline std::vector<std::string>
fpSet(bool sweepBench)
{
    if (!sweepBench || fullSet())
        return categoryNames(BenchCategory::Fp);
    return quickFp();
}

/** The Table-1 baseline (no value prediction). */
inline SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.vpMode = VpMode::None;
    cfg.maxInsts = instCount();
    cfg.seed = envU64("MTVP_SEED", 1);
    return cfg;
}

/** Memoizing runner: baselines are shared across series. */
class Runner
{
  public:
    SimResult
    run(const SimConfig &cfg, const std::string &workload)
    {
        std::string key = workload + "|" + cfg.toString() + "|" +
                          std::to_string(cfg.maxInsts) + "|" +
                          std::to_string(cfg.seed) + "|" +
                          std::to_string(cfg.prefetchEnabled);
        auto it = _cache.find(key);
        if (it != _cache.end())
            return it->second;
        SimResult r = runWorkload(cfg, workload);
        _cache.emplace(std::move(key), r);
        return r;
    }

  private:
    std::map<std::string, SimResult> _cache;
};

inline void
printTitle(const std::string &title)
{
    std::printf("==== %s ====\n", title.c_str());
    std::printf("(useful-IPC %% speedup over the no-VP baseline; "
                "%llu useful insts/run)\n",
                static_cast<unsigned long long>(instCount()));
}

inline void
printHeader(const std::vector<std::string> &cols)
{
    std::printf("%-10s", "workload");
    for (const auto &c : cols)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &values)
{
    std::printf("%-10s", name.c_str());
    for (double v : values)
        std::printf(" %12.1f", v);
    std::printf("\n");
}

/**
 * Run one speedup table: for every workload, the baseline plus each
 * configuration in @p configs; prints per-workload speedups and the
 * per-category geometric mean row.
 */
inline void
speedupTable(Runner &runner, const std::string &category,
             const std::vector<std::string> &workloads,
             const SimConfig &base,
             const std::vector<std::pair<std::string, SimConfig>> &configs)
{
    printHeader([&] {
        std::vector<std::string> cols;
        for (const auto &[name, cfg] : configs)
            cols.push_back(name);
        return cols;
    }());

    std::vector<std::vector<double>> perConfig(configs.size());
    for (const auto &wl : workloads) {
        SimResult b = runner.run(base, wl);
        std::vector<double> row;
        for (size_t i = 0; i < configs.size(); ++i) {
            SimResult r = runner.run(configs[i].second, wl);
            double s = percentSpeedup(b, r);
            row.push_back(s);
            perConfig[i].push_back(s);
        }
        printRow(wl, row);
    }
    std::vector<double> geo;
    for (auto &v : perConfig)
        geo.push_back(geomeanSpeedup(v));
    printRow("gmean-" + category, geo);
    std::printf("\n");
}

} // namespace vpbench

#endif // VPSIM_BENCH_BENCH_UTIL_HH
