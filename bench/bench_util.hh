/**
 * @file
 * Shared harness for the per-figure/table bench binaries. Every bench
 * prints the same rows/series the paper reports (percent speedup in
 * useful IPC over the no-VP Table-1 baseline), with geometric means per
 * SPEC category as in the paper's figures.
 *
 * Environment knobs:
 *   MTVP_INSTS=<n>   useful instructions per run   (default 12000)
 *   MTVP_SET=full    run every workload            (default: benches
 *                    that sweep many configurations use a fixed
 *                    representative subset; single-sweep benches always
 *                    run the full set)
 *   MTVP_SEED=<n>    workload data-set seed        (default 1)
 *   MTVP_JOBS=<n>    parallel sim jobs (default: hardware threads;
 *                    1 = serial). Also --jobs N on any bench binary.
 *   MTVP_NO_CACHE=1  skip the persistent result cache (--no-cache)
 *   MTVP_CACHE_DIR=  result cache directory (default bench-cache/)
 *   MTVP_CACHE_MAX_MB=<n>  cap the cache directory size; oldest
 *                    entries (results and checkpoints) are evicted
 *                    after each store until the directory fits
 *   MTVP_CACHE_STATS=1  print cache hit/miss/eviction counters at
 *                    exit (--cache-stats)
 *   MTVP_JSON=<path> also write this binary's rows as JSON
 *   MTVP_TIME_SKIP=0 disable the next-event time-skip engine (results
 *                    are bit-identical either way; 0 only slows the
 *                    simulator — used by the CI equivalence check)
 *   MTVP_LEDGER=<path>  append job-lifecycle events to this JSONL run
 *                    ledger (--ledger PATH; run_all sets it for every
 *                    figure it spawns — see src/sim/run_ledger.hh)
 *   MTVP_LEDGER_FIGURE=<label>  figure label stamped on ledger events
 *   MTVP_METRICS_DUMP=<path>  write the engine metrics registry as
 *                    Prometheus text at exit (src/sim/metrics.hh)
 *   MTVP_WATCHDOG=0  disable the stuck-job watchdog;
 *                    MTVP_WATCHDOG_MIN_SECS / MTVP_WATCHDOG_MULT tune
 *                    its flagging threshold (src/sim/watchdog.hh)
 *
 * Simulations fan out over a SimPool/SimJobGraph (src/sim/sim_pool.hh):
 * each (config, workload) point is an independent deterministic job, so
 * row/series order — and every printed number — is identical at any job
 * count. Finished points persist in the on-disk result cache keyed by
 * the hashed canonical config (src/sim/result_cache.hh), making a rerun
 * of an already-computed figure near-instant.
 */

#ifndef VPSIM_BENCH_BENCH_UTIL_HH
#define VPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/profiler.hh"
#include "sim/result_cache.hh"
#include "sim/run_ledger.hh"
#include "sim/sim_pool.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

namespace vpbench
{

using namespace vpsim;

inline uint64_t
envU64(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 0) : def;
}

inline uint64_t
instCount()
{
    return envU64("MTVP_INSTS", 12000);
}

inline bool
fullSet()
{
    const char *v = std::getenv("MTVP_SET");
    return v != nullptr && std::strcmp(v, "full") == 0;
}

/** All registered workload names of one category. ".long" variants
 *  (fast-forward/sampling long runs) are excluded: the paper figures
 *  and their expected scoreboards predate them. */
inline std::vector<std::string>
categoryNames(BenchCategory cat)
{
    std::vector<std::string> names;
    for (const Workload *w : workloadsByCategory(cat)) {
        const std::string &n = w->name();
        if (n.size() >= 5 && n.compare(n.size() - 5, 5, ".long") == 0)
            continue;
        names.push_back(n);
    }
    return names;
}

/** Representative subset used by multi-configuration sweeps. */
inline std::vector<std::string>
quickInt()
{
    return {"gzip.g", "vpr.r", "mcf", "crafty", "parser", "vortex",
            "twolf"};
}

inline std::vector<std::string>
quickFp()
{
    return {"wupwise", "swim", "art.1", "equake", "mgrid", "ammp"};
}

inline std::vector<std::string>
intSet(bool sweepBench)
{
    if (!sweepBench || fullSet())
        return categoryNames(BenchCategory::Int);
    return quickInt();
}

inline std::vector<std::string>
fpSet(bool sweepBench)
{
    if (!sweepBench || fullSet())
        return categoryNames(BenchCategory::Fp);
    return quickFp();
}

/** The Table-1 baseline (no value prediction). */
inline SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.vpMode = VpMode::None;
    cfg.maxInsts = instCount();
    cfg.seed = envU64("MTVP_SEED", 1);
    cfg.timeSkip = envU64("MTVP_TIME_SKIP", 1);
    return cfg;
}

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    int jobs = 0;     ///< 0 = MTVP_JOBS env / hardware concurrency.
    bool noCache = false;
    /** Enable the host self-profiler on every submitted run. */
    bool profile = std::getenv("MTVP_PROFILE") != nullptr;
    /** Print result-cache hit/miss/eviction counters at exit. */
    bool cacheStats = std::getenv("MTVP_CACHE_STATS") != nullptr;
    /** JSONL run-ledger path (overrides MTVP_LEDGER when non-empty). */
    std::string ledger;
};

inline BenchOptions &
benchOptions()
{
    // Written only by benchInit() in main, before the SimPool exists;
    // vplint:allow(global-state) workers never touch it
    static BenchOptions opts;
    return opts;
}

/**
 * Parse the common bench flags (--jobs N, --no-cache); fatal() on
 * anything unrecognized. Call first thing in every bench main().
 */
inline void
benchInit(int argc, char **argv)
{
    BenchOptions &o = benchOptions();
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--jobs" && i + 1 < argc) {
            o.jobs = std::atoi(argv[++i]);
        } else if (a.rfind("--jobs=", 0) == 0) {
            o.jobs = std::atoi(a.c_str() + 7);
        } else if (a == "--no-cache") {
            o.noCache = true;
        } else if (a == "--profile") {
            o.profile = true;
        } else if (a == "--cache-stats") {
            o.cacheStats = true;
        } else if (a == "--ledger" && i + 1 < argc) {
            o.ledger = argv[++i];
        } else if (a.rfind("--ledger=", 0) == 0) {
            o.ledger = a.substr(9);
        } else if (a == "--help" || a == "-h") {
            std::printf("usage: %s [--jobs N] [--no-cache] [--profile] "
                        "[--cache-stats] [--ledger PATH]\n"
                        "  --jobs N     parallel sim jobs (default: "
                        "MTVP_JOBS or hardware threads; 1 = serial)\n"
                        "  --no-cache   ignore the persistent result "
                        "cache (bench-cache/)\n"
                        "  --profile    host self-profiler breakdown "
                        "(also MTVP_PROFILE=1; cached\n"
                        "               results contribute no host "
                        "time — combine with --no-cache)\n"
                        "  --cache-stats  print result-cache "
                        "hit/miss/eviction counters at exit\n"
                        "               (also MTVP_CACHE_STATS=1)\n"
                        "  --ledger PATH  append job-lifecycle events "
                        "to a JSONL run ledger\n"
                        "               (also MTVP_LEDGER=PATH)\n",
                        argv[0]);
            std::exit(0);
        } else {
            fatal("unknown bench option '%s' (try --help)", a.c_str());
        }
        if (o.jobs < 0)
            fatal("--jobs must be >= 1");
    }
    if (!o.ledger.empty())
        RunLedger::global().open(o.ledger);
}

/**
 * Parallel memoizing runner: every (config, workload) point becomes one
 * job on a shared SimPool; identical points (the baselines every series
 * shares) dedup onto a single future, and completed points persist in
 * the on-disk result cache.
 */
class Runner
{
  public:
    Runner()
        : _cache(benchOptions().noCache ? ResultCache("")
                                        : ResultCache::standard()),
          _pool(benchOptions().jobs > 0 ? benchOptions().jobs
                                        : SimPool::defaultJobs()),
          _graph(_pool, _cache.enabled() ? &_cache : nullptr)
    {
    }

    ~Runner()
    {
        if (const char *dump = std::getenv("MTVP_METRICS_DUMP");
            dump != nullptr && *dump != '\0') {
            std::FILE *f = std::fopen(dump, "w");
            if (f == nullptr) {
                warn("cannot write MTVP_METRICS_DUMP file '%s'", dump);
            } else {
                std::string text =
                    MetricsRegistry::instance().prometheusText();
                std::fwrite(text.data(), 1, text.size(), f);
                std::fclose(f);
            }
        }
        if (!benchOptions().cacheStats)
            return;
        ResultCacheStats s = _cache.stats();
        std::printf("[cache] dir=%s hits=%llu misses=%llu "
                    "evictions=%llu%s\n",
                    _cache.enabled() ? _cache.dir().c_str() : "(disabled)",
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses),
                    static_cast<unsigned long long>(s.evictions),
                    _cache.maxBytes() != 0 ? " (size-capped)" : "");
    }

    /** Enqueue one point (dedup/cached); get() in any order. */
    std::shared_future<SimResult>
    submit(const SimConfig &cfg, const std::string &workload)
    {
        if (benchOptions().profile && !cfg.profile) {
            // Telemetry-only knob: not part of the canonical cache key,
            // so enabling it never invalidates cached results (which
            // simply contribute no host time).
            SimConfig profiled = cfg;
            profiled.profile = true;
            return _graph.submit(profiled, workload);
        }
        return _graph.submit(cfg, workload);
    }

    /** Synchronous convenience wrapper over submit(). */
    SimResult
    run(const SimConfig &cfg, const std::string &workload)
    {
        return submit(cfg, workload).get();
    }

    SimPool &pool() { return _pool; }
    SimJobGraph &graph() { return _graph; }
    const ResultCache &cache() const { return _cache; }

  private:
    ResultCache _cache;
    SimPool _pool;
    SimJobGraph _graph;
};

/**
 * Optional machine-readable row sink: when MTVP_JSON is set, every row
 * a bench prints is also recorded and dumped as JSON at process exit
 * (bench/run_all.cc aggregates these into BENCH_results.json).
 */
class JsonRecorder
{
  public:
    static JsonRecorder &
    instance()
    {
        // record() runs only on the main thread (rows are collected
        // vplint:allow(global-state) after the futures resolve)
        static JsonRecorder r;
        return r;
    }

    void
    setTitle(const std::string &title)
    {
        if (_title.empty())
            _title = title;
    }

    void
    record(const std::string &category, const std::string &workload,
           const std::string &config, const SimResult &base,
           const SimResult &r, double speedupPct)
    {
        if (!enabled())
            return;
        Row row;
        row.category = category;
        row.workload = workload;
        row.config = config;
        row.speedupPct = speedupPct;
        row.ipc = r.usefulIpc;
        row.baseIpc = base.usefulIpc;
        row.cycles = static_cast<double>(r.cycles);
        _rows.push_back(std::move(row));
    }

    bool enabled() const { return std::getenv("MTVP_JSON") != nullptr; }

    ~JsonRecorder()
    {
        if (!enabled() || _rows.empty())
            return;
        const char *path = std::getenv("MTVP_JSON");
        std::FILE *f = std::fopen(path, "w");
        if (f == nullptr) {
            warn("cannot write MTVP_JSON file '%s'", path);
            return;
        }
        auto q = [](const std::string &s) {
            std::ostringstream os;
            jsonQuote(os, s);
            return os.str();
        };
        // jsonNumber serializes non-finite doubles as null — a divide-
        // by-zero speedup must not produce invalid JSON.
        auto n = [](double v) {
            std::ostringstream os;
            jsonNumber(os, v);
            return os.str();
        };
        std::fprintf(f, "{\n  \"title\": %s,\n  \"insts\": %llu,\n"
                        "  \"rows\": [",
                     q(_title).c_str(),
                     static_cast<unsigned long long>(instCount()));
        for (size_t i = 0; i < _rows.size(); ++i) {
            const Row &r = _rows[i];
            std::fprintf(
                f,
                "%s\n    {\"category\": %s, \"workload\": %s, "
                "\"config\": %s, \"speedupPct\": %s, "
                "\"ipc\": %s, \"baseIpc\": %s, \"cycles\": %s}",
                i == 0 ? "" : ",", q(r.category).c_str(),
                q(r.workload).c_str(), q(r.config).c_str(),
                n(r.speedupPct).c_str(), n(r.ipc).c_str(),
                n(r.baseIpc).c_str(), n(r.cycles).c_str());
        }
        std::fprintf(f, "\n  ]");
        if (GlobalProfile::any()) {
            std::fprintf(f, ",\n  \"hostProfile\": %s",
                         GlobalProfile::snapshotJson().c_str());
        }
        std::fprintf(f, "\n}\n");
        std::fclose(f);
    }

  private:
    struct Row
    {
        std::string category;
        std::string workload;
        std::string config;
        double speedupPct = 0.0;
        double ipc = 0.0;
        double baseIpc = 0.0;
        double cycles = 0.0;
    };

    std::string _title;
    std::vector<Row> _rows;
};

inline void
printTitle(const std::string &title)
{
    std::printf("==== %s ====\n", title.c_str());
    std::printf("(useful-IPC %% speedup over the no-VP baseline; "
                "%llu useful insts/run)\n",
                static_cast<unsigned long long>(instCount()));
    JsonRecorder::instance().setTitle(title);
}

inline void
printHeader(const std::vector<std::string> &cols)
{
    std::printf("%-10s", "workload");
    for (const auto &c : cols)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &values)
{
    std::printf("%-10s", name.c_str());
    for (double v : values)
        std::printf(" %12.1f", v);
    std::printf("\n");
}

/**
 * Run one speedup table: for every workload, the baseline plus each
 * configuration in @p configs; prints per-workload speedups and the
 * per-category geometric mean row.
 *
 * Every point is submitted to the runner's job pool up front, then
 * collected in submission order — so the whole table simulates in
 * parallel while rows and numbers stay bit-identical to a serial run.
 */
inline void
speedupTable(Runner &runner, const std::string &category,
             const std::vector<std::string> &workloads,
             const SimConfig &base,
             const std::vector<std::pair<std::string, SimConfig>> &configs)
{
    printHeader([&] {
        std::vector<std::string> cols;
        for (const auto &[name, cfg] : configs)
            cols.push_back(name);
        return cols;
    }());

    // Fan the whole matrix out first (baselines dedup onto one job per
    // workload across every series of the bench)...
    std::vector<std::shared_future<SimResult>> baseFuts;
    std::vector<std::vector<std::shared_future<SimResult>>> cfgFuts;
    for (const auto &wl : workloads) {
        baseFuts.push_back(runner.submit(base, wl));
        cfgFuts.emplace_back();
        for (const auto &[name, cfg] : configs)
            cfgFuts.back().push_back(runner.submit(cfg, wl));
    }

    // ...then collect and print in deterministic row order.
    std::vector<std::vector<double>> perConfig(configs.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        const SimResult &b = baseFuts[w].get();
        std::vector<double> row;
        for (size_t i = 0; i < configs.size(); ++i) {
            const SimResult &r = cfgFuts[w][i].get();
            double s = percentSpeedup(b, r);
            row.push_back(s);
            perConfig[i].push_back(s);
            JsonRecorder::instance().record(category, workloads[w],
                                            configs[i].first, b, r, s);
        }
        printRow(workloads[w], row);
    }
    std::vector<double> geo;
    for (auto &v : perConfig)
        geo.push_back(geomeanSpeedup(v));
    printRow("gmean-" + category, geo);
    std::printf("\n");
}

} // namespace vpbench

#endif // VPSIM_BENCH_BENCH_UTIL_HH
