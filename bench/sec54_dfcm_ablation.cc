/**
 * @file
 * Section 5.4 (text) — order-3 DFCM with the improved index function
 * versus the Wang-Franklin hybrid. The paper found DFCM "more
 * aggressive" — more correct *and* more incorrect predictions — and net
 * worse than the hybrid; this bench regenerates that comparison and the
 * supporting prediction counts.
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Section 5.4: DFCM vs Wang-Franklin (mtvp8)");

    SimConfig base = baseConfig();
    Runner runner;

    auto mk = [&](PredictorKind pred) {
        SimConfig c = base;
        c.vpMode = VpMode::Mtvp;
        c.numContexts = 8;
        c.predictor = pred;
        c.selector = SelectorKind::IlpPred;
        c.spawnLatency = 8;
        c.storeBufferSize = 128;
        return c;
    };

    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"wf", mk(PredictorKind::WangFranklin)},
        {"dfcm", mk(PredictorKind::Dfcm)},
        {"stride", mk(PredictorKind::Stride)},
    };

    speedupTable(runner, "int", intSet(true), base, configs);
    speedupTable(runner, "fp", fpSet(true), base, configs);

    // Prediction-volume comparison (the paper's "more aggressive" note).
    std::printf("prediction volumes (followed / correct / incorrect):\n");
    for (const auto &[name, cfg] : configs) {
        double followed = 0;
        double correct = 0;
        double incorrect = 0;
        for (const auto &wl : intSet(true)) {
            SimResult r = runner.run(cfg, wl);
            followed += r.stat("vp.followed");
            correct += r.stat("vp.correct");
            incorrect += r.stat("vp.incorrect");
        }
        std::printf("  %-7s %10.0f %10.0f %10.0f\n", name.c_str(),
                    followed, correct, incorrect);
    }
    return 0;
}
