/**
 * @file
 * Figure 1 — Change in useful IPC with oracle value prediction.
 *
 * Conditions (paper Section 5.1): oracle predictor, ILP-pred load
 * selector, 1-cycle spawn, unbounded store buffer; series are STVP and
 * MTVP with 2/4/8 total hardware contexts, each as percent speedup over
 * the no-value-prediction Table-1 baseline, for SPECint and SPECfp.
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Figure 1: oracle value prediction potential "
               "(STVP vs MTVP x {2,4,8}, ILP-pred)");

    SimConfig base = baseConfig();

    auto oracle = [&](VpMode mode, int ctxs) {
        SimConfig c = base;
        c.vpMode = mode;
        c.numContexts = ctxs;
        c.predictor = PredictorKind::Oracle;
        c.selector = SelectorKind::IlpPred;
        c.spawnLatency = 1;
        c.storeBufferSize = 0; // Unbounded (Section 5.1 idealization).
        return c;
    };

    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"stvp", oracle(VpMode::Stvp, 1)},
        {"mtvp2", oracle(VpMode::Mtvp, 2)},
        {"mtvp4", oracle(VpMode::Mtvp, 4)},
        {"mtvp8", oracle(VpMode::Mtvp, 8)},
    };

    Runner runner;
    speedupTable(runner, "int", intSet(false), base, configs);
    speedupTable(runner, "fp", fpSet(false), base, configs);
    return 0;
}
