/**
 * @file
 * Paper-fidelity scoreboard: committed per-figure expected values with
 * tolerances, compared against freshly measured bench rows. The
 * simulator is deterministic (seeded workloads, seeded predictors), so
 * at fixed MTVP_INSTS/MTVP_SEED/MTVP_SET the measured numbers reproduce
 * exactly; the warn band exists for intentional model changes that are
 * being re-baselined, and the fail band catches unintended drift — a
 * refactor that silently reshapes a figure fails `run_all --scoreboard`
 * instead of merging unnoticed.
 *
 * Expected files (bench/expected/<figure>.json):
 *   { "schemaVersion": "mtvp-scoreboard-v1", "figure": "...",
 *     "insts": 12000, "seed": 1, "fullSet": false,
 *     "points": [ {"category": ..., "workload": ..., "config": ...,
 *                  "metric": "speedupPct", "expected": ...,
 *                  "warnTol": ..., "failTol": ...}, ... ] }
 *
 * Tolerances are absolute (percentage points for speedupPct): a
 * measured value within warnTol of expected passes, within failTol
 * warns, beyond failTol fails. Re-baseline with `run_all
 * --write-expected` after a deliberate model change.
 */

#ifndef VPSIM_BENCH_SCOREBOARD_HH
#define VPSIM_BENCH_SCOREBOARD_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace vpbench
{

inline constexpr const char *scoreboardSchemaVersion =
    "mtvp-scoreboard-v1";

/** Outcome of one expected-vs-measured comparison. */
enum class PointStatus
{
    Pass,    ///< |measured - expected| <= warnTol.
    Warn,    ///< Within failTol but outside warnTol.
    Fail,    ///< Outside failTol.
    Missing, ///< No measured row matched the point.
};

const char *pointStatusName(PointStatus s);

/** One committed expectation. */
struct ExpectedPoint
{
    std::string category;
    std::string workload;
    std::string config;
    std::string metric = "speedupPct";
    double expected = 0.0;
    double warnTol = 0.0;
    double failTol = 0.0;
};

/** One figure's committed expectations plus their run settings. */
struct ExpectedFigure
{
    std::string figure;
    uint64_t insts = 0;
    uint64_t seed = 0;
    bool fullSet = false;
    std::vector<ExpectedPoint> points;
};

/** One compared point. */
struct PointResult
{
    ExpectedPoint point;
    double measured = 0.0;
    PointStatus status = PointStatus::Missing;
};

/** One figure's comparison outcome. */
struct FigureScore
{
    std::string figure;
    /** Note about mismatched run settings ("" when they match). */
    std::string settingsNote;
    std::vector<PointResult> results;

    int count(PointStatus s) const;
    /** Worst status across all points (Pass < Warn < Fail/Missing). */
    PointStatus worst() const;
};

/** Classify @p measured against one expectation. */
PointStatus evaluatePoint(const ExpectedPoint &p, double measured);

/**
 * Default tolerances for a freshly written baseline: a small absolute
 * floor plus a relative band, so large speedups tolerate proportional
 * drift without letting small ones drown in it.
 */
double defaultWarnTol(double expected);
double defaultFailTol(double expected);

/**
 * Parse one expected-values file. Returns false (with @p error set
 * when non-null) on unreadable file, bad JSON, or a schema-version
 * mismatch.
 */
bool loadExpectedFigure(const std::string &path, ExpectedFigure &out,
                        std::string *error = nullptr);

/**
 * Compare a figure's expectations against a parsed bench-row fragment
 * (the MTVP_JSON object: {"title", "insts", "rows": [...]}) as spliced
 * into BENCH_results.json. @p insts / @p seed / @p fullSet describe
 * the measuring run's settings; a mismatch with the baseline's is
 * reported via FigureScore::settingsNote.
 */
FigureScore scoreFigure(const ExpectedFigure &expected,
                        const vpsim::json::Value &report, uint64_t insts,
                        uint64_t seed, bool fullSet);

/**
 * Build a fresh baseline from a measured fragment: one point per row,
 * default tolerances.
 */
ExpectedFigure baselineFromReport(const std::string &figure,
                                  const vpsim::json::Value &report,
                                  uint64_t insts, uint64_t seed,
                                  bool fullSet);

/** Serialize an ExpectedFigure as a committed expected-values file. */
std::string expectedFigureJson(const ExpectedFigure &fig);

/**
 * Render the pass/warn/fail report for every scored figure. Markdown
 * mode emits a table (for CI job summaries); console mode a compact
 * fixed-width listing. Failing/missing points are always itemized.
 */
void printScoreReport(std::ostream &os,
                      const std::vector<FigureScore> &scores,
                      bool markdown);

} // namespace vpbench

#endif // VPSIM_BENCH_SCOREBOARD_HH
