/**
 * @file
 * Section 5.3 — Store-buffer size sweep. The per-context speculative
 * store buffer bounds how far a spawned thread may run (speculation
 * distance counted in stores). The paper reports performance tailing
 * off at 64 entries and below, with 128 entries close to unbounded.
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Section 5.3: store-buffer size sweep "
               "(oracle, mtvp4, 8-cycle spawn)");

    SimConfig base = baseConfig();
    Runner runner;

    auto cfgFor = [&](int sbSize) {
        SimConfig c = base;
        c.vpMode = VpMode::Mtvp;
        c.numContexts = 4;
        c.predictor = PredictorKind::Oracle;
        c.selector = SelectorKind::IlpPred;
        c.spawnLatency = 8;
        c.storeBufferSize = sbSize;
        return c;
    };

    // The paper sweeps larger sizes over 100M-instruction regions; at
    // our run lengths the binding range sits lower, so the small sizes
    // are included to expose the same tail-off shape.
    std::vector<std::pair<std::string, SimConfig>> configs;
    for (int size : {2, 4, 8, 16, 64, 128, 512})
        configs.emplace_back("sb" + std::to_string(size), cfgFor(size));
    configs.emplace_back("unbounded", cfgFor(0));

    speedupTable(runner, "int", intSet(true), base, configs);
    speedupTable(runner, "fp", fpSet(true), base, configs);
    return 0;
}
