/**
 * @file
 * Table 1 — the simulated machine's architectural parameters. Prints
 * the live SimConfig defaults next to the values the paper lists so a
 * reviewer can check the reproduction's baseline in one glance.
 */

#include <cstdio>

#include "sim/config.hh"

int
main()
{
    vpsim::SimConfig cfg;
    cfg.validate();

    auto row = [](const char *what, const std::string &ours,
                  const char *paper) {
        std::printf("%-28s %-34s %s\n", what, ours.c_str(), paper);
    };
    std::printf("==== Table 1: architectural parameters ====\n");
    std::printf("%-28s %-34s %s\n", "parameter", "this simulator",
                "paper");
    row("pipeline depth", std::to_string(cfg.pipelineDepth), "30 stages");
    row("fetch bandwidth",
        std::to_string(cfg.fetchWidth) + " insts / " +
            std::to_string(cfg.fetchLines) + " lines",
        "16 insts from 2 cachelines");
    row("branch predictor",
        "2bcgskew " + std::to_string(cfg.bpredMetaEntries / 1024) +
            "K meta+gshare, " +
            std::to_string(cfg.bpredBimodalEntries / 1024) + "K bimodal",
        "2bcgskew 64K meta/gshare, 16K bimodal");
    row("stride prefetcher",
        "PC-based, " + std::to_string(cfg.prefetchEntries) +
            " entries, " + std::to_string(cfg.streamBuffers) +
            " stream buffers",
        "PC based, 256 entry, 8 stream buffers");
    row("ROB size", std::to_string(cfg.robSize) + " (per context)",
        "256 entry");
    row("rename registers", std::to_string(cfg.renameRegs) + " per file",
        "224");
    row("queue sizes",
        std::to_string(cfg.iqSize) + "/" + std::to_string(cfg.fqSize) +
            "/" + std::to_string(cfg.mqSize) + " IQ/FQ/MQ",
        "64 entries each IQ, FQ, MQ");
    row("issue bandwidth",
        std::to_string(cfg.issueWidth) + " (" +
            std::to_string(cfg.intIssue) + " int, " +
            std::to_string(cfg.fpIssue) + " fp, " +
            std::to_string(cfg.memIssue) + " ld/st)",
        "8 per cycle: 6 int, 2 fp, 4 ld/st");
    row("icache",
        std::to_string(cfg.icacheSize / 1024) + "KB " +
            std::to_string(cfg.icacheAssoc) + "-way, " +
            std::to_string(cfg.icacheLatency) + " cycles",
        "64KB 2-way, 2 cycles");
    row("L1 dcache",
        std::to_string(cfg.dcacheSize / 1024) + "KB " +
            std::to_string(cfg.dcacheAssoc) + "-way, " +
            std::to_string(cfg.dcacheLatency) + " cycles",
        "64KB 2-way, 2 cycles");
    row("L2",
        std::to_string(cfg.l2Size / 1024) + "KB " +
            std::to_string(cfg.l2Assoc) + "-way, " +
            std::to_string(cfg.l2Latency) + " cycles",
        "512KB 8-way, 20 cycles");
    row("L3",
        std::to_string(cfg.l3Size / 1024 / 1024) + "MB " +
            std::to_string(cfg.l3Assoc) + "-way, " +
            std::to_string(cfg.l3Latency) + " cycles",
        "4MB 16-way, 50 cycles");
    row("main memory latency", std::to_string(cfg.memLatency) + " cycles",
        "1000 cycles");
    return 0;
}
