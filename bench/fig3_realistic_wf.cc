/**
 * @file
 * Figure 3 — Change in useful IPC with the realistic Wang-Franklin
 * hybrid predictor: 4K-entry VHT (5 learned values + hardwired 0/1 +
 * stride), 32K-entry ValPHT, confidence +1/-8 with threshold 12 and max
 * 32, 8-cycle spawn latency, 128-entry store buffers (Section 5.4).
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Figure 3: realistic Wang-Franklin predictor "
               "(8-cycle spawn, 128-entry store buffer)");

    SimConfig base = baseConfig();
    Runner runner;

    auto wf = [&](VpMode mode, int ctxs) {
        SimConfig c = base;
        c.vpMode = mode;
        c.numContexts = ctxs;
        c.predictor = PredictorKind::WangFranklin;
        c.selector = SelectorKind::IlpPred;
        c.spawnLatency = 8;
        c.storeBufferSize = 128;
        return c;
    };

    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"stvp", wf(VpMode::Stvp, 1)},
        {"mtvp2", wf(VpMode::Mtvp, 2)},
        {"mtvp4", wf(VpMode::Mtvp, 4)},
        {"mtvp8", wf(VpMode::Mtvp, 8)},
    };

    speedupTable(runner, "int", intSet(false), base, configs);
    speedupTable(runner, "fp", fpSet(false), base, configs);
    return 0;
}
