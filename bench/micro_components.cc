/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the
 * value predictors, the branch predictor, the cache tag model, and the
 * functional emulator. These bound the simulator's own performance
 * rather than reproducing a paper figure.
 */

#include <benchmark/benchmark.h>

#include "bpred/branch_predictor.hh"
#include "emu/emulator.hh"
#include "emu/memory.hh"
#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "vpred/dfcm.hh"
#include "vpred/stride.hh"
#include "vpred/wang_franklin.hh"

namespace
{

using namespace vpsim;

template <typename Predictor>
void
predictTrainLoop(benchmark::State &state)
{
    SimConfig cfg;
    Predictor pred(cfg);
    Rng rng(42);
    uint64_t value = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + (rng.next() & 0xff) * 4;
        value += 64;
        ValuePrediction p = pred.predict(pc, value);
        benchmark::DoNotOptimize(p);
        pred.train(pc, value);
    }
}

void
BM_WangFranklin(benchmark::State &state)
{
    predictTrainLoop<WangFranklinPredictor>(state);
}

void
BM_Dfcm(benchmark::State &state)
{
    predictTrainLoop<DfcmPredictor>(state);
}

void
BM_Stride(benchmark::State &state)
{
    predictTrainLoop<StridePredictor>(state);
}

void
BM_BranchPredictor(benchmark::State &state)
{
    StatGroup stats;
    BranchPredictor bp(stats, 16384, 65536, 65536, 1);
    Rng rng(7);
    for (auto _ : state) {
        Addr pc = 0x2000 + (rng.next() & 0x3ff) * 4;
        bool taken = (pc >> 4) & 1;
        bool p = bp.predict(pc, 0);
        benchmark::DoNotOptimize(p);
        bp.update(pc, 0, taken);
    }
}

void
BM_CacheAccess(benchmark::State &state)
{
    StatGroup stats;
    Cache cache(stats, "bm", 64 * 1024, 2, 64);
    Rng rng(11);
    for (auto _ : state) {
        Addr addr = (rng.next() & 0xfffff) & ~Addr{7};
        CacheAccess a = cache.access(addr, false);
        benchmark::DoNotOptimize(a);
    }
}

void
BM_Emulator(benchmark::State &state)
{
    MainMemory mem;
    Program prog = assemble(R"(
        li   r1, 1048576
        addi r2, r0, 0
    loop:
        ld   r3, 0(r1)
        add  r2, r2, r3
        addi r1, r1, 8
        andi r4, r2, 1023
        bne  r4, r0, loop
        b    loop
    )");
    mem.loadProgram(prog);
    Emulator emu(mem);
    ArchState st;
    st.pc = prog.base;
    for (auto _ : state) {
        EmuStep s = emu.step(st, nullptr);
        benchmark::DoNotOptimize(s);
    }
}

BENCHMARK(BM_WangFranklin);
BENCHMARK(BM_Dfcm);
BENCHMARK(BM_Stride);
BENCHMARK(BM_BranchPredictor);
BENCHMARK(BM_CacheAccess);
BENCHMARK(BM_Emulator);

} // namespace

BENCHMARK_MAIN();
