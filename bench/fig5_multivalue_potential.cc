/**
 * @file
 * Figure 5 — Multiple-value potential: for every followed value
 * prediction, how often the primary prediction was wrong but the
 * correct value *was* present in the Wang-Franklin tables and over the
 * confidence threshold (Section 5.6). The paper reports fractions up to
 * ~25% on some benchmarks.
 */

#include "bench_util.hh"

using namespace vpbench;

namespace
{

void
fractionTable(Runner &runner, const std::string &category,
              const std::vector<std::string> &workloads,
              const SimConfig &cfg)
{
    std::printf("%-10s %12s %12s %12s\n", "workload", "followed",
                "recoverable", "fraction");
    std::vector<std::shared_future<SimResult>> futs;
    for (const auto &wl : workloads)
        futs.push_back(runner.submit(cfg, wl));
    double sumFrac = 0.0;
    int n = 0;
    for (size_t w = 0; w < workloads.size(); ++w) {
        const std::string &wl = workloads[w];
        const SimResult &r = futs[w].get();
        double followed = r.stat("vp.followed");
        double had = r.stat("vp.primaryWrongHadCorrect");
        double frac = followed > 0 ? had / followed : 0.0;
        std::printf("%-10s %12.0f %12.0f %12.3f\n", wl.c_str(), followed,
                    had, frac);
        sumFrac += frac;
        ++n;
    }
    std::printf("%-10s %12s %12s %12.3f\n\n",
                ("avg-" + category).c_str(), "", "",
                n > 0 ? sumFrac / n : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Figure 5: fraction of followed predictions where the "
               "primary value was wrong but the correct value was "
               "in-table over threshold");

    // Every confident prediction is followed (Always selector): Figure
    // 5 measures the predictor's table content, not the criticality
    // filter.
    SimConfig cfg = baseConfig();
    cfg.vpMode = VpMode::Mtvp;
    cfg.numContexts = 8;
    cfg.predictor = PredictorKind::WangFranklin;
    cfg.selector = SelectorKind::Always;
    cfg.spawnLatency = 8;
    cfg.storeBufferSize = 128;

    Runner runner;
    fractionTable(runner, "int", intSet(false), cfg);
    fractionTable(runner, "fp", fpSet(false), cfg);
    return 0;
}
