/**
 * @file
 * Command-line simulator driver: run any registered workload under any
 * machine configuration and dump the full statistics report.
 *
 *   vpsim_cli                          list workloads
 *   vpsim_cli mcf                      Table-1 baseline
 *   vpsim_cli mcf vpMode=mtvp numContexts=8 predictor=wf \
 *             selector=ilp maxInsts=50000
 *   vpsim_cli --list-stats [key=value ...]
 *                                      dump every stat name+description
 *                                      the given config would export
 *
 * Tracing & telemetry keys (see src/sim/trace.hh):
 *   traceFlags=MTVP,Commit    enable DPRINTF debug flags (glob ok: VP*)
 *   traceStart=N traceEnd=M   restrict tracing to cycles [N, M)
 *   traceFile=<file>          redirect trace output (default stderr)
 *   pipeView=<file>           gem5-O3PipeView pipeline trace (Konata)
 *   statsJson=<file>          dump the full stats report as JSON
 *   samplePeriod=N sampleStats=<glob> sampleFile=<f.json|f.csv>
 *                             periodic stat time series
 *
 * Observability keys (src/sim/cpi_stack.hh, src/sim/profiler.hh,
 * src/sim/analytics.hh, src/sim/perfetto_trace.hh):
 *   cpiStack=-                print the per-thread CPI-stack report
 *   cpiStack=<file>           ... or write it to a file
 *   profile=1                 host self-profiler report (where the
 *                             simulator itself spends wall-clock time)
 *   analytics=- | <file>      provenance analytics report: spawn
 *                             lifecycle outcomes, per-spawn-PC table,
 *                             per-load-PC value-prediction attribution
 *                             (--analytics is shorthand for analytics=-)
 *   perfettoTrace=<file>      trace-event JSON of the run, openable in
 *                             chrome://tracing / ui.perfetto.dev; also
 *                             enables the analytics timeline
 *   metricsJson=<file>        engine-telemetry snapshot (the process-
 *                             wide metrics registry, src/sim/metrics.hh
 *                             — host-side counters, never sim stats;
 *                             excluded from the result-cache key: it
 *                             cannot affect a single stat bit)
 *
 * Long-run keys (src/sim/checkpoint.hh, docs/EXPERIMENTS.md):
 *   ffInsts=N                 fast-forward N instructions emulator-only
 *                             (warming caches/predictors) before the
 *                             detailed region starts
 *   checkpointDir=<dir>       persist/reuse the post-fast-forward state
 *                             so sweep siblings skip the fast-forward
 *                             (keyed by warmup-relevant config only)
 *   sampleIntervals=K sampleIntervalInsts=M sampleWarmupInsts=W
 *                             SimPoint-style sampling: K intervals of M
 *                             measured insts, each preceded by W insts
 *                             of unmeasured detailed warmup, fast-
 *                             forwarding between intervals; reported as
 *                             sample.mean.* with sample.ci95.* bounds
 *
 * Any SimConfig key accepted by SimConfig::set() works as key=value.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/cpu.hh"
#include "emu/memory.hh"
#include "sim/analytics.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/perfetto_trace.hh"
#include "workloads/workload.hh"

using namespace vpsim;

namespace
{

void
listWorkloads()
{
    std::printf("registered workloads:\n");
    for (const Workload *w : allWorkloads()) {
        std::printf("  %-10s [%s]  %s\n", w->name().c_str(),
                    w->category() == BenchCategory::Int ? "int" : "fp",
                    w->description().c_str());
    }
}

/** Dump every stat the given config registers (name + description). */
int
listStats(int argc, char **argv)
{
    SimConfig cfg;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        size_t eq = arg.find('=');
        if (eq == std::string::npos)
            fatal("expected key=value, got '%s'", arg.c_str());
        cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    cfg.validate();

    // A Cpu registers every stat at construction; no run needed.
    MainMemory mem;
    Cpu cpu(cfg, mem, 0);
    for (const StatBase *s : cpu.stats().stats())
        std::printf("%-28s %s\n", s->name().c_str(), s->desc().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        listWorkloads();
        std::printf("\nusage: %s <workload> [key=value ...]\n"
                    "       %s --list-stats [key=value ...]\n",
                    argv[0], argv[0]);
        return 0;
    }

    std::string name = argv[1];
    if (name == "--list-stats")
        return listStats(argc, argv);
    const Workload *w = findWorkload(name);
    if (w == nullptr) {
        std::fprintf(stderr, "unknown workload '%s'\n\n", name.c_str());
        listWorkloads();
        return 1;
    }

    SimConfig cfg;
    cfg.maxInsts = 20000;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--analytics") {
            // Out-of-line set(): GCC 12 -O3 flags the inlined literal
            // assignment with a spurious -Wrestrict (GCC bug 105329).
            cfg.set("analytics", "-");
            continue;
        }
        size_t eq = arg.find('=');
        if (eq == std::string::npos)
            fatal("expected key=value, got '%s'", arg.c_str());
        cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    cfg.validate();

    std::printf("workload: %s (%s)\n", w->name().c_str(),
                w->description().c_str());
    std::printf("config:   %s\n\n", cfg.toString().c_str());

    MainMemory mem;
    Addr entry = w->build(mem, cfg.seed);
    Cpu cpu(cfg, mem, entry);
    if (cfg.ffInsts > 0) {
        CheckpointStore store(cfg.checkpointDir);
        if (store.load(cfg, w->name(), cpu)) {
            std::printf("restored checkpoint: %s\n\n",
                        store.entryPath(cfg, w->name()).c_str());
        } else {
            cpu.fastForward(cfg.ffInsts);
            store.save(cfg, w->name(), cpu);
        }
    }
    cpu.run();

    cpu.stats().dump(std::cout);

    if (!cfg.statsJson.empty()) {
        std::ofstream os(cfg.statsJson);
        if (!os)
            fatal("cannot open stats JSON file '%s'",
                  cfg.statsJson.c_str());
        cpu.stats().dumpJson(os);
        std::printf("\nstats JSON written to %s\n",
                    cfg.statsJson.c_str());
    }
    if (!cfg.sampleFile.empty() && cpu.sampler() != nullptr) {
        cpu.sampler()->dumpToFile(cfg.sampleFile);
        std::printf("stat samples written to %s\n",
                    cfg.sampleFile.c_str());
    }
    if (!cfg.cpiStack.empty()) {
        if (cfg.cpiStack == "-") {
            std::printf("\n");
            cpu.cpiStack().printReport(std::cout);
        } else {
            std::ofstream os(cfg.cpiStack);
            if (!os)
                fatal("cannot open CPI-stack report file '%s'",
                      cfg.cpiStack.c_str());
            cpu.cpiStack().printReport(os);
            std::printf("\nCPI-stack report written to %s\n",
                        cfg.cpiStack.c_str());
        }
    }
    if (cfg.profile) {
        std::printf("\n");
        cpu.profiler().printReport(std::cout);
    }
    if (!cfg.analytics.empty()) {
        if (cfg.analytics == "-") {
            std::printf("\n");
            writeAnalyticsReport(std::cout, cpu.analytics(),
                                 cpu.vpAttribution(), 20);
        } else {
            std::ofstream os(cfg.analytics);
            if (!os)
                fatal("cannot open analytics report file '%s'",
                      cfg.analytics.c_str());
            writeAnalyticsReport(os, cpu.analytics(),
                                 cpu.vpAttribution(), 20);
            std::printf("\nanalytics report written to %s\n",
                        cfg.analytics.c_str());
        }
    }
    if (!cfg.perfettoTrace.empty()) {
        std::ofstream os(cfg.perfettoTrace);
        if (!os)
            fatal("cannot open Perfetto trace file '%s'",
                  cfg.perfettoTrace.c_str());
        writeSimTrace(os, cpu.analytics(), cfg.numContexts);
        std::printf("\nPerfetto trace written to %s (open in "
                    "chrome://tracing)\n",
                    cfg.perfettoTrace.c_str());
    }
    if (!cfg.metricsJson.empty()) {
        std::ofstream os(cfg.metricsJson);
        if (!os)
            fatal("cannot open metrics JSON file '%s'",
                  cfg.metricsJson.c_str());
        MetricsRegistry::instance().writeJson(os);
        std::printf("\nengine metrics written to %s\n",
                    cfg.metricsJson.c_str());
    }

    std::printf("\n%-20s %llu\n", "cycles:",
                static_cast<unsigned long long>(cpu.cycles()));
    std::printf("%-20s %.0f (%.0f skip events)\n", "skipped cycles:",
                cpu.stats().get("sim.skippedCycles"),
                cpu.stats().get("sim.skipEvents"));
    if (cpu.ffInsts() > 0) {
        std::printf("%-20s %llu\n", "fast-forwarded:",
                    static_cast<unsigned long long>(cpu.ffInsts()));
    }
    std::printf("%-20s %llu\n", "useful insts:",
                static_cast<unsigned long long>(cpu.usefulInsts()));
    std::printf("%-20s %.4f\n", "useful IPC:", cpu.usefulIpc());
    if (cpu.sampledIntervals() > 0) {
        std::printf("%-20s %zu\n", "sampled intervals:",
                    cpu.sampledIntervals());
        std::printf("%-20s %.4f +/- %.4f (CI95)\n", "sample CPI:",
                    cpu.stats().get("sample.mean.cpi"),
                    cpu.stats().get("sample.ci95.cpi"));
    }
    std::printf("%-20s %s\n", "ran to HALT:",
                cpu.haltedUsefully() ? "yes" : "no");
    return 0;
}
