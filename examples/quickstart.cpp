/**
 * @file
 * Quickstart: run one workload on a baseline core and on an MTVP core,
 * and print the useful-IPC speedup — the paper's headline measurement.
 *
 * Usage: quickstart [workload] [insts]
 */

#include <cstdlib>
#include <iostream>

#include "sim/simulation.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    std::string name = argc > 1 ? argv[1] : "mcf";
    uint64_t insts = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 30000;

    if (findWorkload(name) == nullptr) {
        std::cerr << "unknown workload '" << name << "'. Available:\n";
        for (const Workload *w : allWorkloads())
            std::cerr << "  " << w->name() << " - " << w->description()
                      << "\n";
        return 1;
    }

    // Baseline: Table-1 machine, no value prediction.
    SimConfig base;
    base.vpMode = VpMode::None;
    base.maxInsts = insts;

    // MTVP: 4 hardware contexts, Wang-Franklin predictor, ILP-pred
    // selector, single fetch path (the paper's realistic default).
    SimConfig mtvp = base;
    mtvp.vpMode = VpMode::Mtvp;
    mtvp.numContexts = 4;
    mtvp.predictor = PredictorKind::WangFranklin;
    mtvp.selector = SelectorKind::IlpPred;

    std::cout << "workload: " << name << " (" << insts
              << " useful instructions)\n";

    SimResult b = runWorkload(base, name);
    std::cout << "  baseline : " << b.cycles << " cycles, IPC "
              << b.usefulIpc << "\n";

    SimResult m = runWorkload(mtvp, name);
    std::cout << "  mtvp4/wf : " << m.cycles << " cycles, IPC "
              << m.usefulIpc << "\n";
    std::cout << "  spawns=" << m.stat("mtvp.spawns")
              << " promotes=" << m.stat("mtvp.promotes")
              << " kills=" << m.stat("mtvp.kills")
              << " vpCorrect=" << m.stat("vp.correct")
              << " vpIncorrect=" << m.stat("vp.incorrect") << "\n";
    std::cout << "  speedup  : " << percentSpeedup(b, m) << "%\n";
    return 0;
}
