/**
 * @file
 * Domain example 1 — the paper's motivating scenario: a pointer-chasing
 * workload (the mcf mimic) whose serial chain of 1000-cycle misses
 * defeats out-of-order execution, single-threaded value prediction, and
 * the stride prefetcher alike, but falls to threaded value prediction.
 *
 * Walks through the baseline, STVP, and MTVP-with-increasing-contexts
 * machines and explains each result.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace vpsim;

namespace
{

SimResult
report(const char *label, const SimConfig &cfg, const SimResult *base)
{
    SimResult r = runWorkload(cfg, "mcf");
    std::printf("%-28s %9llu cycles  IPC %6.4f", label,
                static_cast<unsigned long long>(r.cycles), r.usefulIpc);
    if (base != nullptr)
        std::printf("  (%+.1f%%)", percentSpeedup(*base, r));
    std::printf("\n");
    return r;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("mcf-style network-simplex pointer chase, 20k useful "
                "instructions\n");
    std::printf("memory latency: 1000 cycles; the chase's next-node "
                "loads mostly miss to memory\n\n");

    SimConfig base;
    base.maxInsts = 20000;
    SimResult b = report("baseline (no VP)", base, nullptr);

    std::printf("\n-- single-threaded value prediction: the predicted "
                "load unblocks its dependents,\n   but nothing past the "
                "load can commit, so the window still fills --\n");
    SimConfig stvp = base;
    stvp.vpMode = VpMode::Stvp;
    stvp.predictor = PredictorKind::Oracle;
    stvp.selector = SelectorKind::IlpPred;
    report("stvp (oracle)", stvp, &b);

    std::printf("\n-- threaded value prediction: the speculative stream "
                "commits in its own context,\n   so each context parks "
                "on one miss and the chain overlaps --\n");
    for (int ctxs : {2, 4, 8}) {
        SimConfig mtvp = base;
        mtvp.vpMode = VpMode::Mtvp;
        mtvp.numContexts = ctxs;
        mtvp.predictor = PredictorKind::Oracle;
        mtvp.selector = SelectorKind::IlpPred;
        mtvp.spawnLatency = 1;
        mtvp.storeBufferSize = 0;
        char label[64];
        std::snprintf(label, sizeof(label), "mtvp, %d contexts (oracle)",
                      ctxs);
        SimResult r = report(label, mtvp, &b);
        std::printf("    spawns=%.0f promotes=%.0f kills=%.0f\n",
                    r.stat("mtvp.spawns"), r.stat("mtvp.promotes"),
                    r.stat("mtvp.kills"));
    }

    std::printf("\n-- with the realistic Wang-Franklin predictor --\n");
    SimConfig wf = base;
    wf.vpMode = VpMode::Mtvp;
    wf.numContexts = 8;
    wf.predictor = PredictorKind::WangFranklin;
    wf.selector = SelectorKind::IlpPred;
    wf.spawnLatency = 8;
    wf.storeBufferSize = 128;
    report("mtvp8 (wang-franklin)", wf, &b);
    return 0;
}
