/**
 * @file
 * Domain example 2 — value-predictor exploration: feed each predictor a
 * set of canonical load-value sequences and print confident-prediction
 * coverage and accuracy. Demonstrates the predictor APIs directly
 * (predict / notePredictionUsed / train / predictMulti) and reproduces
 * the Section 5.4 observation that DFCM is more aggressive than the
 * Wang-Franklin hybrid.
 *
 * Usage: predictor_explorer [samplesPerSequence]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "vpred/value_predictor.hh"

using namespace vpsim;

namespace
{

struct Sequence
{
    const char *name;
    std::function<RegVal(int, Rng &)> next;
};

struct Outcome
{
    int confident = 0;
    int correct = 0;
};

Outcome
evaluate(ValuePredictor &p, const Sequence &seq, int samples)
{
    Rng rng(7);
    Outcome o;
    int warm = samples / 2;
    for (int i = 0; i < samples; ++i) {
        RegVal actual = seq.next(i, rng);
        ValuePrediction pred = p.predict(0x1000, actual);
        if (i >= warm && pred.confident) {
            ++o.confident;
            if (pred.value == actual)
                ++o.correct;
        }
        if (pred.confident)
            p.notePredictionUsed(0x1000, pred.value);
        p.train(0x1000, actual);
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    int samples = argc > 1 ? std::atoi(argv[1]) : 2000;

    std::vector<Sequence> sequences = {
        {"constant", [](int, Rng &) { return RegVal{42}; }},
        {"stride+64", [](int i, Rng &) { return RegVal(i) * 64; }},
        {"plateaus(64)",
         [](int i, Rng &) { return RegVal{5} + RegVal((i / 64) % 4); }},
        {"period-3 deltas",
         [](int i, Rng &) {
             RegVal v = 0;
             for (int k = 0; k < i % 300; ++k)
                 v += 1 + (k % 3);
             return v;
         }},
        {"90% zero",
         [](int, Rng &rng) {
             return rng.nextBool(0.9) ? RegVal{0}
                                      : RegVal{1 + rng.nextBounded(9)};
         }},
        {"random",
         [](int, Rng &rng) { return rng.next(); }},
    };

    std::vector<std::pair<const char *, PredictorKind>> predictors = {
        {"last-value", PredictorKind::LastValue},
        {"stride", PredictorKind::Stride},
        {"dfcm-3", PredictorKind::Dfcm},
        {"wang-franklin", PredictorKind::WangFranklin},
    };

    std::printf("confident-prediction coverage%% / accuracy%% over %d "
                "samples (second half measured)\n\n",
                samples);
    std::printf("%-18s", "sequence");
    for (auto &[name, kind] : predictors)
        std::printf(" %20s", name);
    std::printf("\n");

    StatGroup stats;
    for (const Sequence &seq : sequences) {
        std::printf("%-18s", seq.name);
        for (auto &[name, kind] : predictors) {
            SimConfig cfg;
            cfg.predictor = kind;
            auto p = makeValuePredictor(cfg, stats);
            Outcome o = evaluate(*p, seq, samples);
            double denom = samples / 2.0;
            double cov = 100.0 * o.confident / denom;
            double acc = o.confident > 0
                             ? 100.0 * o.correct / o.confident
                             : 0.0;
            std::printf("      %6.1f / %6.1f", cov, acc);
        }
        std::printf("\n");
    }

    std::printf("\nmulti-value query (Wang-Franklin, alternating "
                "111/222, liberal threshold):\n  candidates:");
    SimConfig cfg;
    StatGroup stats2;
    auto wf = makeValuePredictor(cfg, stats2);
    for (int i = 0; i < 400; ++i)
        wf->train(0x2000, i % 2 == 0 ? 111 : 222);
    for (RegVal v : wf->predictMulti(0x2000, 8, 0, 0))
        std::printf(" %llu", static_cast<unsigned long long>(v));
    std::printf("\n");
    return 0;
}
