/**
 * @file
 * Domain example 3 — bring your own kernel: write a program in vpsim
 * assembly, generate its data set, and measure it across machine
 * configurations. Shows the full public API surface: the assembler,
 * MainMemory data-set construction, Cpu instantiation, and stat
 * queries — everything the canned Workload registry does, by hand.
 */

#include <cstdio>
#include <memory>

#include "core/cpu.hh"
#include "emu/emulator.hh"
#include "emu/memory.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace vpsim;

namespace
{

/** A histogram kernel: data-dependent indices into a big table. */
const char *kernelSource = R"(
    li   r1, 0x200000      # input stream (1 MB of bytes)
    li   r2, 0x800000      # 64K-bucket histogram (512 KB)
    li   r3, 30000         # bytes to process
    addi r4, r0, 0         # offset
loop:
    add  r5, r1, r4
    lbu  r6, 0(r5)         # input byte
    lbu  r7, 1(r5)
    slli r8, r6, 8
    or   r8, r8, r7        # 16-bit key
    slli r8, r8, 3
    add  r8, r2, r8
    ld   r9, 0(r8)         # bucket count (mostly small: predictable)
    addi r9, r9, 1
    sd   r9, 0(r8)
    addi r4, r4, 1
    subi r3, r3, 1
    bne  r3, r0, loop
    halt
)";

void
buildData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed);
    for (Addr i = 0; i < (1 << 20); ++i)
        mem.write8(0x200000 + i, static_cast<uint8_t>(rng.nextBounded(
                                     rng.nextBool(0.7) ? 16 : 256)));
}

double
run(const SimConfig &cfg, const char *label)
{
    MainMemory mem;
    Program prog = assemble(kernelSource);
    mem.loadProgram(prog);
    buildData(mem, cfg.seed);

    Cpu cpu(cfg, mem, prog.base);
    cpu.run();

    std::printf("%-22s %8llu cycles  IPC %6.4f  (l1d miss %5.0f, "
                "spawns %4.0f)\n",
                label, static_cast<unsigned long long>(cpu.cycles()),
                cpu.usefulIpc(), cpu.stats().get("l1d.misses"),
                cpu.stats().get("mtvp.spawns"));
    return cpu.usefulIpc();
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("custom histogram kernel, 20k useful instructions\n\n");

    SimConfig base;
    base.maxInsts = 20000;
    double b = run(base, "baseline");

    SimConfig stvp = base;
    stvp.vpMode = VpMode::Stvp;
    stvp.predictor = PredictorKind::WangFranklin;
    stvp.selector = SelectorKind::IlpPred;
    double s = run(stvp, "stvp/wf");

    SimConfig mtvp = stvp;
    mtvp.vpMode = VpMode::Mtvp;
    mtvp.numContexts = 4;
    mtvp.spawnLatency = 8;
    double m = run(mtvp, "mtvp4/wf");

    std::printf("\nspeedup over baseline: stvp %+.1f%%, mtvp4 %+.1f%%\n",
                100.0 * (s / b - 1.0), 100.0 * (m / b - 1.0));
    return 0;
}
